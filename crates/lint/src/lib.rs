//! Bug-study-driven static analysis over elaborated designs.
//!
//! The ASPLOS'22 debugging study (PAPER.md) catalogues the bug classes that
//! dominate FPGA bring-up: misused language semantics, logic-design mistakes
//! in FSMs and handshakes, silent signal loss, and out-of-range indexing.
//! Most of those classes leave a *static* fingerprint in the RTL — the bug is
//! visible in the elaborated netlist before a single cycle is simulated.
//! This crate turns each fingerprint into a [`LintPass`] that runs over a
//! flat [`Design`] and emits stable `L`-coded [`HwdbgError`] diagnostics
//! with source spans, so the CLI can point at the buggy construct directly.
//!
//! # Architecture
//!
//! - [`LintPass`] — one analysis: an `id`, the codes it may emit, and a
//!   `run` over the design. Passes are pure: all state lives in the sink.
//! - [`LintSink`] — collects findings, applying per-code severity levels
//!   from a [`LintConfig`] (`Allow` drops, `Warn` keeps, `Deny` escalates
//!   to [`Severity::Error`]).
//! - [`registry`] — the built-in pass set, keyed to the study's Table 1
//!   subclasses. [`run_all`] drives every pass under a
//!   [`StageTimer`]/[`SimCounters`] pair so lint cost shows up in the same
//!   observability surface as simulation stages.
//!
//! Passes share the guard-path machinery in [`analysis`]: a walker that
//! visits every assignment with the `if`/`case` guard stack active at that
//! point, plus conjunct flattening and constant-bound extraction.

pub mod analysis;
mod explain;
mod passes;

pub use explain::{all_explanations, explain, LintExplanation};
pub use passes::fsm::FsmLintPass;
pub use passes::handshake::HandshakePass;
pub use passes::loss::{DeadWritePass, LivenessPass, ReinitPass, StickyFlagPass};
pub use passes::range::MemIndexPass;
pub use passes::structure::{CombLoopPass, WidthTruncationPass};
pub use passes::style::{AssignStylePass, IncompleteCasePass, MultiProcWritePass};
pub use passes::taint::{BackpressurePass, OccupancyPass, PrecisionPass, QualificationPass};

use hwdbg_dataflow::Design;
use hwdbg_diag::{ErrorCode, HwdbgError, Severity};
use hwdbg_obs::{SimCounters, StageTimer};
use std::collections::BTreeMap;

/// Reporting level for a lint code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Drop findings with this code entirely.
    Allow,
    /// Report as a warning (the default for most codes).
    Warn,
    /// Report as an error; the CLI exits nonzero.
    Deny,
}

impl Level {
    /// Parses a CLI-style level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "allow" => Some(Level::Allow),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }
}

/// The built-in level of a lint code before any [`LintConfig`] override.
///
/// Everything defaults to [`Level::Warn`] except `L0302` (FSM trap state):
/// terminal hold states are a common *intentional* idiom ("run to
/// completion, wait for reset"), so it must be opted into.
pub fn default_level(code: ErrorCode) -> Level {
    match code {
        ErrorCode::LintTrapState => Level::Allow,
        _ => Level::Warn,
    }
}

/// Per-run lint configuration: severity overrides by code string.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: BTreeMap<String, Level>,
}

impl LintConfig {
    /// An empty configuration (built-in defaults apply).
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Overrides the level for one code (e.g. `"L0302"`).
    pub fn set(&mut self, code: &str, level: Level) -> &mut LintConfig {
        self.overrides.insert(code.to_owned(), level);
        self
    }

    /// The effective level for a code.
    pub fn level_for(&self, code: ErrorCode) -> Level {
        self.overrides
            .get(code.as_str())
            .copied()
            .unwrap_or_else(|| default_level(code))
    }
}

/// Collects the findings of one pass, applying configured levels.
pub struct LintSink<'c> {
    config: &'c LintConfig,
    findings: Vec<HwdbgError>,
    /// Findings emitted before allow-filtering (for `SimCounters`).
    emitted: u64,
}

impl<'c> LintSink<'c> {
    /// A sink over the given configuration.
    pub fn new(config: &'c LintConfig) -> LintSink<'c> {
        LintSink {
            config,
            findings: Vec::new(),
            emitted: 0,
        }
    }

    /// Records a finding. The error's severity is rewritten from the
    /// configured level of its code; `Allow`ed findings are dropped (but
    /// still counted as emitted).
    pub fn emit(&mut self, mut err: HwdbgError) {
        self.emitted += 1;
        match self.config.level_for(err.code) {
            Level::Allow => {}
            Level::Warn => {
                err.severity = Severity::Warning;
                self.findings.push(err);
            }
            Level::Deny => {
                err.severity = Severity::Error;
                self.findings.push(err);
            }
        }
    }

    /// Findings kept so far.
    pub fn findings(&self) -> &[HwdbgError] {
        &self.findings
    }

    fn into_parts(self) -> (Vec<HwdbgError>, u64) {
        (self.findings, self.emitted)
    }
}

/// One static analysis over an elaborated design.
pub trait LintPass {
    /// Stable kebab-case pass name (used as the stage-timer label).
    fn id(&self) -> &'static str;
    /// The diagnostic codes this pass may emit.
    fn codes(&self) -> &'static [ErrorCode];
    /// Runs the analysis, emitting findings into the sink.
    fn run(&self, design: &Design, sink: &mut LintSink<'_>);
}

/// The built-in pass set, in execution order.
pub fn registry() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(IncompleteCasePass),
        Box::new(AssignStylePass),
        Box::new(MultiProcWritePass),
        Box::new(CombLoopPass),
        Box::new(WidthTruncationPass),
        Box::new(FsmLintPass),
        Box::new(HandshakePass),
        Box::new(DeadWritePass),
        Box::new(LivenessPass),
        Box::new(StickyFlagPass),
        Box::new(ReinitPass),
        Box::new(MemIndexPass),
        Box::new(QualificationPass),
        Box::new(BackpressurePass),
        Box::new(OccupancyPass),
        Box::new(PrecisionPass),
    ]
}

/// Runs every registered pass over `design`, timing each pass as a stage
/// and counting passes/findings in `counters`.
///
/// Findings are sorted errors-first, then by source position.
pub fn run_all(
    design: &Design,
    config: &LintConfig,
    timer: &mut StageTimer,
    counters: &mut SimCounters,
) -> Vec<HwdbgError> {
    let mut all = Vec::new();
    for pass in registry() {
        let mut sink = LintSink::new(config);
        timer.time(pass.id(), || pass.run(design, &mut sink));
        let (findings, emitted) = sink.into_parts();
        counters.lint_passes += 1;
        counters.lint_findings += emitted;
        all.extend(findings);
    }
    all.sort_by_key(|e| {
        (
            e.severity != Severity::Error,
            e.span.map_or(u32::MAX as usize, |s| s.start),
            e.code.as_str(),
        )
    });
    all
}

/// Runs every pass with default configuration and throwaway observability —
/// the convenience entry point for tests and batch tooling.
pub fn run_default(design: &Design) -> Vec<HwdbgError> {
    let mut timer = StageTimer::new();
    let mut counters = SimCounters::default();
    run_all(design, &LintConfig::new(), &mut timer, &mut counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_levels_apply() {
        let mut cfg = LintConfig::new();
        assert_eq!(cfg.level_for(ErrorCode::LintCombLoop), Level::Warn);
        assert_eq!(cfg.level_for(ErrorCode::LintTrapState), Level::Allow);
        cfg.set("L0201", Level::Deny).set("L0302", Level::Warn);
        assert_eq!(cfg.level_for(ErrorCode::LintCombLoop), Level::Deny);
        assert_eq!(cfg.level_for(ErrorCode::LintTrapState), Level::Warn);
    }

    #[test]
    fn sink_filters_and_escalates() {
        let mut cfg = LintConfig::new();
        cfg.set("L0201", Level::Deny).set("L0202", Level::Allow);
        let mut sink = LintSink::new(&cfg);
        sink.emit(HwdbgError::warning(ErrorCode::LintCombLoop, "loop"));
        sink.emit(HwdbgError::warning(ErrorCode::LintWidthTruncation, "trunc"));
        let (findings, emitted) = sink.into_parts();
        assert_eq!(emitted, 2);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, Severity::Error);
    }

    #[test]
    fn registry_ids_and_codes_are_unique() {
        let passes = registry();
        assert!(passes.len() >= 7, "the study needs at least 7 passes");
        let mut ids: Vec<_> = passes.iter().map(|p| p.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), passes.len(), "duplicate pass id");
        let mut codes: Vec<_> = passes.iter().flat_map(|p| p.codes()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(
            codes.len(),
            passes.iter().map(|p| p.codes().len()).sum::<usize>(),
            "a code is claimed by two passes"
        );
        for c in codes {
            assert!(c.is_lint(), "{} is not an L-code", c.as_str());
        }
    }
}
