//! Shared guard-path machinery for lint passes.
//!
//! Every pass over procedural code needs the same primitive: visit each
//! assignment together with the `if`/`case` guards that dominate it. The
//! [`walk`] visitor provides that, and the helpers below decompose guard
//! stacks into *conjunct leaves* — the individual boolean facts that must
//! hold on a path — so passes can ask questions like "is this write under a
//! positive reset?" or "does this set-site wait for `ready`?" without
//! re-implementing boolean reasoning.

use hwdbg_bits::Bits;
use hwdbg_dataflow::{eval_const, CondLeaf, Design, SigKind};
use hwdbg_rtl::{print_expr, BinaryOp, Dir, Expr, LValue, Span, Stmt, UnaryOp};
use std::collections::{BTreeMap, BTreeSet};

/// One guard on the path from a process body to a statement.
#[derive(Debug, Clone, Copy)]
pub enum Guard<'a> {
    /// An `if` condition; `positive` is false inside the `else` branch.
    Cond {
        /// The condition expression.
        cond: &'a Expr,
        /// True in the `then` branch, false in the `else` branch.
        positive: bool,
    },
    /// A `case` arm: the selector matched one of `labels`.
    Arm {
        /// The case selector.
        selector: &'a Expr,
        /// The labels of the matched arm.
        labels: &'a [Expr],
    },
    /// The `default` arm: the selector matched no explicit arm.
    Default {
        /// The case selector.
        selector: &'a Expr,
    },
}

/// Calls `f` on every [`Stmt::Assign`] and [`Stmt::Display`] in `stmt`,
/// passing the guard stack active at that point. `for` bodies are visited
/// with the loop condition as an extra guard.
pub fn walk<'a>(
    stmt: &'a Stmt,
    guards: &mut Vec<Guard<'a>>,
    f: &mut dyn FnMut(&[Guard<'a>], &'a Stmt),
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                walk(s, guards, f);
            }
        }
        Stmt::If { cond, then, els } => {
            guards.push(Guard::Cond {
                cond,
                positive: true,
            });
            walk(then, guards, f);
            guards.pop();
            if let Some(e) = els {
                guards.push(Guard::Cond {
                    cond,
                    positive: false,
                });
                walk(e, guards, f);
                guards.pop();
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            for arm in arms {
                guards.push(Guard::Arm {
                    selector: expr,
                    labels: &arm.labels,
                });
                walk(&arm.body, guards, f);
                guards.pop();
            }
            if let Some(d) = default {
                guards.push(Guard::Default { selector: expr });
                walk(d, guards, f);
                guards.pop();
            }
        }
        Stmt::For { cond, body, .. } => {
            guards.push(Guard::Cond {
                cond,
                positive: true,
            });
            walk(body, guards, f);
            guards.pop();
        }
        Stmt::Assign { .. } | Stmt::Display { .. } => f(guards, stmt),
        Stmt::Finish | Stmt::Empty => {}
    }
}

/// A flattened boolean leaf of the `if` guards on a path: the fact
/// `expr` (if `positive`) or `!expr` holds whenever the path executes.
#[derive(Debug, Clone, Copy)]
pub struct Conjunct<'a> {
    /// The leaf expression, with `!`/`~` wrappers stripped into `positive`.
    pub expr: &'a Expr,
    /// Polarity of the fact.
    pub positive: bool,
}

/// Flattens the `if`-condition guards of a path into conjunct leaves:
/// `a && !b` contributes `(a, +)` and `(b, -)`. Disjunctions and negated
/// conjunctions stay opaque single leaves (we only reason about facts that
/// *must* hold). Case-arm guards contribute nothing — compare paths with
/// [`path_key`] when arm identity matters.
pub fn conjuncts<'a>(guards: &[Guard<'a>]) -> Vec<Conjunct<'a>> {
    let mut out = Vec::new();
    for g in guards {
        if let Guard::Cond { cond, positive } = g {
            flatten(cond, *positive, &mut out);
        }
    }
    out
}

fn flatten<'a>(e: &'a Expr, positive: bool, out: &mut Vec<Conjunct<'a>>) {
    match e {
        Expr::Binary(BinaryOp::LogAnd, a, b) if positive => {
            flatten(a, true, out);
            flatten(b, true, out);
        }
        Expr::Unary(UnaryOp::LogNot | UnaryOp::Not, inner) => flatten(inner, !positive, out),
        _ => out.push(Conjunct { expr: e, positive }),
    }
}

/// The conjunct's plain identifier name, if it is a bare signal test.
pub fn ident_leaf<'a>(c: &Conjunct<'a>) -> Option<(&'a str, bool)> {
    match c.expr {
        Expr::Ident(n) => Some((n, c.positive)),
        _ => None,
    }
}

/// Decomposes a conjunct that proves an inductive wrap bound for a counter
/// incremented by one: returns `(register, K)` such that whenever the
/// conjunct holds, `register + 1 <= K`.
///
/// Recognized shapes: the `else` of `if (r == K)` (and `r != K`), and the
/// `then` of `if (r < K)`, with `K` constant under the design's parameters.
pub fn wrap_bound<'a>(c: &Conjunct<'a>, design: &Design) -> Option<(&'a str, u64)> {
    let Expr::Binary(op, a, b) = c.expr else {
        return None;
    };
    match op {
        BinaryOp::Eq | BinaryOp::Ne => {
            let (name, k) = match (&**a, &**b) {
                (Expr::Ident(n), rhs) => (n.as_str(), const_u64(rhs, design)?),
                (lhs, Expr::Ident(n)) => (n.as_str(), const_u64(lhs, design)?),
                _ => return None,
            };
            // `r != K` on the path (either `if (r != K)` taken, or the
            // `else` of `if (r == K)`): r < K inductively, so r+1 <= K.
            let holds_ne = (*op == BinaryOp::Ne) == c.positive;
            holds_ne.then_some((name, k))
        }
        BinaryOp::Lt => {
            if let (Expr::Ident(n), rhs) = (&**a, &**b) {
                // `if (r < K)`: r <= K-1 here, so r+1 <= K.
                (c.positive).then_some((n.as_str(), const_u64(rhs, design)?))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn const_u64(e: &Expr, design: &Design) -> Option<u64> {
    let v = eval_const(e, &design.consts).ok()?;
    if v.width() <= 64 {
        Some(v.to_u64())
    } else {
        None
    }
}

/// Evaluates an expression to a constant under the design's parameters.
pub fn const_value(e: &Expr, design: &Design) -> Option<Bits> {
    eval_const(e, &design.consts).ok()
}

/// A stable textual key identifying one guard path, including case-arm
/// identity — two assignments share a key iff they execute under the same
/// syntactic guards.
pub fn path_key(guards: &[Guard<'_>]) -> String {
    let mut parts = Vec::with_capacity(guards.len());
    for g in guards {
        match g {
            Guard::Cond { cond, positive } => {
                let sign = if *positive { '+' } else { '-' };
                parts.push(format!("{sign}({})", print_expr(cond)));
            }
            Guard::Arm { selector, labels } => {
                let labels: Vec<String> = labels.iter().map(print_expr).collect();
                parts.push(format!("arm({}:{})", print_expr(selector), labels.join(",")));
            }
            Guard::Default { selector } => {
                parts.push(format!("def({})", print_expr(selector)));
            }
        }
    }
    parts.join("&")
}

/// A stable key for one conjunct (expression text plus polarity), used for
/// subset comparisons between paths.
pub fn conjunct_key(c: &Conjunct<'_>) -> String {
    let sign = if c.positive { '+' } else { '-' };
    format!("{sign}({})", print_expr(c.expr))
}

/// Names of reset-style top-level inputs (lowercase name contains `rst` or
/// `reset`).
pub fn reset_inputs(design: &Design) -> BTreeSet<String> {
    design
        .flat
        .ports
        .iter()
        .filter(|p| p.dir == Dir::Input)
        .filter(|p| {
            let n = p.net.name.to_lowercase();
            n.contains("rst") || n.contains("reset")
        })
        .map(|p| p.net.name.clone())
        .collect()
}

/// True when the path's conjuncts include a positive bare test of a reset
/// input — i.e. the statement is part of reset initialization.
pub fn in_reset(guards: &[Guard<'_>], resets: &BTreeSet<String>) -> bool {
    conjuncts(guards)
        .iter()
        .filter_map(ident_leaf)
        .any(|(n, positive)| positive && resets.contains(n))
}

/// Output-port names of the flat module. Clock-written outputs are
/// classified [`SigKind::Reg`](hwdbg_dataflow::SigKind) in
/// [`Design::signals`], so port direction must come from the module AST.
pub fn output_ports(design: &Design) -> BTreeSet<String> {
    design
        .flat
        .ports
        .iter()
        .filter(|p| p.dir == Dir::Output)
        .map(|p| p.net.name.clone())
        .collect()
}

/// Input-port names of the flat module.
pub fn input_ports(design: &Design) -> BTreeSet<String> {
    design
        .flat
        .ports
        .iter()
        .filter(|p| p.dir == Dir::Input)
        .map(|p| p.net.name.clone())
        .collect()
}

/// A registered valid/ready stream endpoint this design *produces*: the
/// valid is driven by local state while ready comes back from outside.
#[derive(Debug, Clone)]
pub struct StreamPair {
    /// The locally-registered valid flag (e.g. `tvalid`, `m_valid`).
    pub valid: String,
    /// The matching ready input (e.g. `tready`, `m_ready`).
    pub ready: String,
    /// Registered payload signals of the stream (`tdata`, `m_last`, …).
    pub payloads: Vec<String>,
}

/// Payload-name suffixes of an AXI-Stream-style channel.
const PAYLOAD_SUFFIXES: [&str; 6] = ["data", "last", "keep", "strb", "user", "id"];

/// Finds every produced stream: a `*valid` register whose `*ready`
/// counterpart is an input port, together with the registered payload
/// signals sharing the prefix. Combinationally-driven valids (FIFO
/// occupancy flags) are not producers in the stability sense and are
/// excluded.
pub fn stream_pairs(design: &Design) -> Vec<StreamPair> {
    let inputs = input_ports(design);
    let mut out = Vec::new();
    for (name, info) in &design.signals {
        if info.kind != SigKind::Reg || !name.ends_with("valid") {
            continue;
        }
        let stem = &name[..name.len() - "valid".len()];
        let ready = format!("{stem}ready");
        if !inputs.contains(&ready) {
            continue;
        }
        let mut payloads = Vec::new();
        let mut candidates: Vec<String> = PAYLOAD_SUFFIXES
            .iter()
            .map(|s| format!("{stem}{s}"))
            .collect();
        let bare = stem.trim_end_matches('_');
        if !bare.is_empty() {
            candidates.push(bare.to_owned());
        }
        for c in candidates {
            if design.signals.get(&c).is_some_and(|s| s.kind == SigKind::Reg) {
                payloads.push(c);
            }
        }
        if !payloads.is_empty() {
            out.push(StreamPair {
                valid: name.clone(),
                ready,
                payloads,
            });
        }
    }
    out
}

/// True when a propagation-condition leaf qualifies a payload advance
/// against the `valid`/`ready` handshake: a positive `ready` test, a
/// negative `valid` test (slot empty), or the idiomatic composite
/// `!valid || ready` kept opaque as a positive disjunction.
pub fn qualifies_advance(leaf: &CondLeaf<'_>, valid: &str, ready: &str) -> bool {
    match leaf.expr {
        Expr::Ident(n) if leaf.positive && n == ready => true,
        Expr::Ident(n) if !leaf.positive && n == valid => true,
        Expr::Binary(BinaryOp::LogOr, a, b) if leaf.positive => {
            let is_not_valid = |e: &Expr| {
                matches!(e, Expr::Unary(UnaryOp::LogNot | UnaryOp::Not, inner)
                    if matches!(&**inner, Expr::Ident(n) if n == valid))
            };
            let is_ready = |e: &Expr| matches!(e, Expr::Ident(n) if n == ready);
            (is_not_valid(a) && is_ready(b)) || (is_ready(a) && is_not_valid(b))
        }
        _ => false,
    }
}

/// Largest count for which `count OP k` holds with the given polarity, or
/// `None` when the comparison does not bound the count from above. This is
/// the interval-abstraction step of the occupancy pass: an admission
/// guard `G` admits a write whenever `G` holds, so the worst-case
/// occupancy at the write is this bound.
pub fn cmp_bound(op: BinaryOp, k: u64, positive: bool) -> Option<u64> {
    if positive {
        match op {
            BinaryOp::Lt => k.checked_sub(1),
            BinaryOp::Le => Some(k),
            _ => None,
        }
    } else {
        match op {
            BinaryOp::Gt => Some(k),
            BinaryOp::Ge => k.checked_sub(1),
            _ => None,
        }
    }
}

/// Single-target continuous-assign drivers: `name -> (rhs, span)`. Used to
/// expand one level of combinational aliasing (`full`, `count`, …) when
/// interpreting guards.
pub fn comb_aliases(design: &Design) -> BTreeMap<&str, (&Expr, Span)> {
    let mut out = BTreeMap::new();
    for c in &design.combs {
        if let Stmt::Assign {
            lhs: LValue::Id(n),
            rhs,
            span,
            ..
        } = &c.body
        {
            out.insert(n.as_str(), (rhs, *span));
        }
    }
    out
}

/// Number of bits needed to represent `v` (at least 1).
pub fn significant_bits(v: &Bits) -> u32 {
    for i in (0..v.width()).rev() {
        if v.bit(i) {
            return i + 1;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_rtl::parse_expr;

    fn leaves(src: &str, positive: bool) -> Vec<(String, bool)> {
        let e = parse_expr(src).unwrap();
        let mut out = Vec::new();
        flatten(&e, positive, &mut out);
        out.iter()
            .map(|c| (print_expr(c.expr), c.positive))
            .collect()
    }

    #[test]
    fn conjuncts_flatten_ands_and_negations() {
        assert_eq!(
            leaves("a && !b && (c || d)", true),
            vec![
                ("a".to_owned(), true),
                ("b".to_owned(), false),
                ("c || d".to_owned(), true),
            ]
        );
        // A negated condition stays opaque: `!(a && b)` proves neither !a
        // nor !b individually.
        assert_eq!(leaves("a && b", false), vec![("a && b".to_owned(), false)]);
        assert_eq!(leaves("!!x", true), vec![("x".to_owned(), true)]);
    }

    #[test]
    fn significant_bits_scans_from_msb() {
        assert_eq!(significant_bits(&Bits::from_u64(32, 0)), 1);
        assert_eq!(significant_bits(&Bits::from_u64(32, 1)), 1);
        assert_eq!(significant_bits(&Bits::from_u64(32, 12)), 4);
        assert_eq!(significant_bits(&Bits::from_u64(64, u64::MAX)), 64);
    }
}
