//! Golden diagnostics: one minimal Verilog reproducer per L-code, asserting
//! the code, a span that points into the offending construct, and a
//! rendered excerpt that shows the right source line.

use hwdbg_dataflow::{Design, NoBlackboxes};
use hwdbg_diag::HwdbgError;
use hwdbg_lint::{Level, LintConfig, LintSink, LintPass};
use hwdbg_obs::{SimCounters, StageTimer};

fn design(src: &str, top: &str) -> Design {
    let file = hwdbg_rtl::parse(src).expect("repro parses");
    hwdbg_dataflow::elaborate(&file, top, &NoBlackboxes).expect("repro elaborates")
}

/// Runs all passes with defaults and returns the findings.
fn lint(src: &str, top: &str) -> (Vec<HwdbgError>, String) {
    let d = design(src, top);
    (hwdbg_lint::run_default(&d), src.to_owned())
}

/// Asserts exactly one finding with `code`, whose span covers `at` and
/// whose rendered excerpt contains `excerpt`.
fn assert_golden(findings: &[HwdbgError], src: &str, code: &str, at: &str, excerpt: &str) {
    let matching: Vec<_> = findings
        .iter()
        .filter(|f| f.code.as_str() == code)
        .collect();
    assert_eq!(
        matching.len(),
        1,
        "expected exactly one {code}, got: {:?}",
        findings
            .iter()
            .map(|f| (f.code.as_str(), f.message.as_str()))
            .collect::<Vec<_>>()
    );
    let f = matching[0];
    let span = f.span.unwrap_or_else(|| panic!("{code} finding has no span"));
    let pos = src.find(at).expect("anchor text exists in repro");
    assert!(
        span.start <= pos && pos < span.end.max(span.start + 1),
        "{code}: span {span:?} does not cover `{at}` at byte {pos}"
    );
    let rendered = f.render(Some(src));
    assert!(
        rendered.contains(excerpt),
        "{code}: rendered diagnostic lacks `{excerpt}`:\n{rendered}"
    );
}

#[test]
fn l0101_incomplete_case() {
    let (f, src) = lint(
        "module t(input [1:0] s, input [7:0] a, output reg [7:0] y);\n\
         always @(*) begin\n\
         \x20 case (s)\n\
         \x20   2'd0: y = a;\n\
         \x20   2'd1: y = ~a;\n\
         \x20 endcase\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0101", "case (s)", "case (s)");
}

#[test]
fn l0102_blocking_in_seq() {
    let (f, src) = lint(
        "module t(input clk, input [7:0] d, output [7:0] y);\n\
         reg [7:0] r;\n\
         assign y = r + 8'd1;\n\
         always @(posedge clk) begin\n\
         \x20 r = d;\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0102", "r = d;", "r = d;");
}

#[test]
fn l0103_nonblocking_in_comb() {
    let (f, src) = lint(
        "module t(input [7:0] d, output reg [7:0] y);\n\
         always @(*) begin\n\
         \x20 y <= d;\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0103", "y <= d;", "y <= d;");
}

#[test]
fn l0104_multi_proc_write() {
    let (f, src) = lint(
        "module t(input clk, input [7:0] a, input [7:0] b, output [7:0] y);\n\
         reg [7:0] r;\n\
         assign y = r;\n\
         always @(posedge clk) r <= a;\n\
         always @(posedge clk) r <= b;\n\
         endmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0104", "r;", "reg [7:0] r;");
}

#[test]
fn l0201_comb_loop() {
    let (f, src) = lint(
        "module t(input [7:0] d, output [7:0] y);\n\
         wire [7:0] a;\n\
         wire [7:0] b;\n\
         assign a = b ^ d;\n\
         assign b = a + 8'd1;\n\
         assign y = a;\n\
         endmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0201", "a;", "wire [7:0] a;");
    assert!(f[0].signals.contains(&"a".to_owned()) && f[0].signals.contains(&"b".to_owned()));
}

#[test]
fn l0202_width_truncation() {
    let (f, src) = lint(
        "module t(input clk, input [63:0] w, output reg [63:0] y);\n\
         reg [31:0] tmp;\n\
         always @(posedge clk) begin\n\
         \x20 tmp <= w ^ 64'd5;\n\
         \x20 y <= {32'd0, tmp};\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0202", "tmp <= w ^ 64'd5;", "tmp <= w ^ 64'd5;");
}

/// Shared FSM skeleton: localparams + case-based transitions.
const FSM_UNREACHABLE: &str = "module t(input clk, input rst, input go, output reg [1:0] s);\n\
    localparam A = 2'd0;\n\
    localparam B = 2'd1;\n\
    localparam C = 2'd2;\n\
    always @(posedge clk) begin\n\
    \x20 if (rst) s <= A;\n\
    \x20 else case (s)\n\
    \x20   A: if (go) s <= B;\n\
    \x20   B: if (go) s <= A;\n\
    \x20   C: s <= A;\n\
    \x20 endcase\n\
    end\nendmodule\n";

#[test]
fn l0301_unreachable_state() {
    let (f, src) = lint(FSM_UNREACHABLE, "t");
    assert_golden(&f, &src, "L0301", "case (s)", "case (s)");
}

const FSM_TRAP: &str = "module t(input clk, input rst, input go, output reg [1:0] s);\n\
    localparam A = 2'd0;\n\
    localparam B = 2'd1;\n\
    localparam DONE = 2'd2;\n\
    always @(posedge clk) begin\n\
    \x20 if (rst) s <= A;\n\
    \x20 else case (s)\n\
    \x20   A: if (go) s <= B;\n\
    \x20   B: if (go) s <= DONE;\n\
    \x20   DONE: s <= DONE;\n\
    \x20 endcase\n\
    end\nendmodule\n";

#[test]
fn l0302_trap_state_is_opt_in() {
    // Default level is Allow: silent.
    let (f, _) = lint(FSM_TRAP, "t");
    assert!(f.iter().all(|e| e.code.as_str() != "L0302"));

    // Enabled via config, the trap is reported.
    let d = design(FSM_TRAP, "t");
    let mut cfg = LintConfig::new();
    cfg.set("L0302", Level::Warn);
    let mut timer = StageTimer::new();
    let mut counters = SimCounters::default();
    let f = hwdbg_lint::run_all(&d, &cfg, &mut timer, &mut counters);
    assert_golden(&f, FSM_TRAP, "L0302", "case (s)", "case (s)");
    assert!(f[0].message.contains("DONE"), "should name the trap state");
}

#[test]
fn l0303_undeclared_state() {
    let (f, src) = lint(
        "module t(input clk, input rst, input go, output reg [1:0] s);\n\
         localparam A = 2'd0;\n\
         localparam B = 2'd1;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) s <= A;\n\
         \x20 else case (s)\n\
         \x20   A: if (go) s <= B;\n\
         \x20   B: if (go) s <= 2'd3;\n\
         \x20 endcase\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0303", "case (s)", "case (s)");
}

#[test]
fn l0401_dead_write() {
    let (f, src) = lint(
        "module t(input clk, input [7:0] d, output reg [7:0] y);\n\
         always @(posedge clk) begin\n\
         \x20 y <= d;\n\
         \x20 y <= 8'd0;\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0401", "y <= d;", "y <= d;");
}

#[test]
fn l0402_never_read() {
    let (f, src) = lint(
        "module t(input clk, input [7:0] d, output reg [7:0] y);\n\
         reg [7:0] stash;\n\
         always @(posedge clk) begin\n\
         \x20 stash <= d;\n\
         \x20 y <= d + 8'd1;\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0402", "stash;", "stash");
}

#[test]
fn l0403_input_ignored() {
    let (f, src) = lint(
        "module t(input clk, input [7:0] d, input dbg, output reg [7:0] y);\n\
         always @(posedge clk) begin\n\
         \x20 y <= d;\n\
         \x20 $display(\"dbg=%b\", dbg);\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0403", "dbg", "dbg");
}

#[test]
fn l0404_sticky_flag() {
    let (f, src) = lint(
        "module t(input clk, input rst, input [8:0] d, input dv, output reg [7:0] y);\n\
         reg bad;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) bad <= 1'b0;\n\
         \x20 else begin\n\
         \x20   if (dv && d[8]) bad <= 1'b1;\n\
         \x20   if (dv && !bad) y <= d[7:0];\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0404", "bad <= 1'b1;", "bad <= 1'b1;");
}

#[test]
fn l0405_incomplete_reinit() {
    let (f, src) = lint(
        "module t(input clk, input rst, input start, input [7:0] w, input wv,\n\
         \x20        output reg [7:0] acc);\n\
         reg [7:0] mix;\n\
         reg [3:0] n;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   acc <= 8'd0;\n\
         \x20   mix <= 8'd7;\n\
         \x20   n <= 4'd0;\n\
         \x20 end else if (start) begin\n\
         \x20   acc <= 8'd0;\n\
         \x20   n <= 4'd0;\n\
         \x20 end else if (wv) begin\n\
         \x20   acc <= acc + w;\n\
         \x20   mix <= mix ^ w;\n\
         \x20   n <= n + 4'd1;\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    assert!(
        f.iter()
            .any(|e| e.code.as_str() == "L0405" && e.signals.contains(&"mix".to_owned())),
        "expected L0405 naming `mix`, got {:?}",
        f.iter().map(|e| e.code.as_str()).collect::<Vec<_>>()
    );
    let finding = f.iter().find(|e| e.code.as_str() == "L0405").expect("found above");
    let span = finding.span.expect("has span");
    let pos = src.find("end else if (start)").expect("re-init branch");
    assert!(span.start >= pos, "span should anchor in the re-init branch");
}

#[test]
fn l0501_mem_index_range() {
    let (f, src) = lint(
        "module t(input clk, input rst, input [7:0] d, input dv, output reg [7:0] y);\n\
         reg [7:0] buf0 [0:9];\n\
         reg [3:0] i;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) i <= 4'd0;\n\
         \x20 else if (dv) begin\n\
         \x20   buf0[i] <= d;\n\
         \x20   if (i == 4'd11) i <= 4'd0;\n\
         \x20   else i <= i + 4'd1;\n\
         \x20   y <= buf0[0];\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0501", "buf0", "buf0");
}

#[test]
fn l0601_valid_waits_ready() {
    let (f, src) = lint(
        "module t(input clk, input rst, input req, input bready, output reg bvalid);\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) bvalid <= 1'b0;\n\
         \x20 else if (req && bready && !bvalid) bvalid <= 1'b1;\n\
         \x20 else if (bvalid && bready) bvalid <= 1'b0;\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0601", "bvalid <= 1'b1;", "bvalid <= 1'b1;");
}

#[test]
fn l0602_handshake_deadlock() {
    let (f, src) = lint(
        "module t(input clk, input rst, output reg a_rdy, output reg b_rdy);\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   a_rdy <= 1'b0;\n\
         \x20   b_rdy <= 1'b0;\n\
         \x20 end else begin\n\
         \x20   if (b_rdy) a_rdy <= 1'b1;\n\
         \x20   if (a_rdy) b_rdy <= 1'b1;\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0602", "a_rdy <= 1'b1;", "a_rdy <= 1'b1;");
}

#[test]
fn l0502_truncated_shift() {
    let (f, src) = lint(
        "module t(input clk, input [11:0] a, input [11:0] b, output reg [15:0] y);\n\
         wire [23:0] prod;\n\
         assign prod = a * b;\n\
         always @(posedge clk) y <= 16'(prod) >> 4;\n\
         endmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0502", "y <= 16'(prod) >> 4", "16'(prod) >> 4");

    // Shift-then-cast keeps the high bits: silent.
    let (f, _) = lint(
        "module t(input clk, input [11:0] a, input [11:0] b, output reg [15:0] y);\n\
         wire [23:0] prod;\n\
         assign prod = a * b;\n\
         always @(posedge clk) y <= 16'(prod >> 4);\n\
         endmodule\n",
        "t",
    );
    assert!(f.is_empty(), "cast-after-shift must be clean: {f:?}");
}

#[test]
fn l0603_unqualified_advance() {
    let (f, src) = lint(
        "module t(input clk, input rst, input en, input [7:0] d, input m_ready,\n\
         \x20        output reg m_valid, output reg [7:0] m_data);\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   m_valid <= 1'b0;\n\
         \x20   m_data <= 8'd0;\n\
         \x20 end else begin\n\
         \x20   m_valid <= en;\n\
         \x20   m_data <= d;\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0603", "m_data <= d;", "m_data <= d;");

    // Qualifying the advance on `!valid || ready` is the fixed shape.
    let (f, _) = lint(
        "module t(input clk, input rst, input en, input [7:0] d, input m_ready,\n\
         \x20        output reg m_valid, output reg [7:0] m_data);\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   m_valid <= 1'b0;\n\
         \x20   m_data <= 8'd0;\n\
         \x20 end else if (!m_valid || m_ready) begin\n\
         \x20   m_valid <= en;\n\
         \x20   m_data <= d;\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    assert!(f.is_empty(), "qualified advance must be clean: {f:?}");
}

#[test]
fn l0604_constant_backpressure() {
    let (f, src) = lint(
        "module t(input clk, input rst, input up_valid, input [7:0] up_data,\n\
         \x20        output up_stall, output reg [7:0] acc);\n\
         assign up_stall = 1'b0;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) acc <= 8'd0;\n\
         \x20 else if (up_valid) acc <= acc + up_data;\n\
         end\nendmodule\n",
        "t",
    );
    assert_golden(&f, &src, "L0604", "assign up_stall", "up_stall = 1'b0");

    // Backpressure derived from real state is dynamic: silent.
    let (f, _) = lint(
        "module t(input clk, input rst, input up_valid, input [7:0] up_data,\n\
         \x20        output up_stall, output reg [7:0] acc, output reg busy_r);\n\
         assign up_stall = busy_r;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   acc <= 8'd0;\n\
         \x20   busy_r <= 1'b0;\n\
         \x20 end else begin\n\
         \x20   busy_r <= up_valid;\n\
         \x20   if (up_valid) acc <= acc + up_data;\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    assert!(f.is_empty(), "registered backpressure must be clean: {f:?}");
}

#[test]
fn l0605_occupancy_overflow() {
    let (f, src) = lint(
        "module t(input clk, input rst, input wr_en, input [7:0] din,\n\
         \x20        input rd_en, output reg [7:0] dout);\n\
         reg [7:0] mem [0:15];\n\
         reg [4:0] wr_ptr;\n\
         reg [4:0] rd_ptr;\n\
         wire full;\n\
         assign full = (wr_ptr - rd_ptr) > 5'd16;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   wr_ptr <= 5'd0;\n\
         \x20   rd_ptr <= 5'd0;\n\
         \x20 end else begin\n\
         \x20   if (wr_en && !full) begin\n\
         \x20     mem[wr_ptr[3:0]] <= din;\n\
         \x20     wr_ptr <= wr_ptr + 5'd1;\n\
         \x20   end\n\
         \x20   if (rd_en) begin\n\
         \x20     dout <= mem[rd_ptr[3:0]];\n\
         \x20     rd_ptr <= rd_ptr + 5'd1;\n\
         \x20   end\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    // The span points at the off-by-one *definition*, not the write site.
    assert_golden(&f, &src, "L0605", "assign full", "> 5'd16");
}

#[test]
fn l0606_occupancy_margin() {
    let (f, src) = lint(
        "module t(input clk, input rst, input s_valid, input [7:0] s_data,\n\
         \x20        input m_ready, output reg s_ready, output reg [7:0] m_data);\n\
         reg [7:0] mem [0:15];\n\
         reg [4:0] wr_ptr;\n\
         reg [4:0] rd_ptr;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   wr_ptr <= 5'd0;\n\
         \x20   rd_ptr <= 5'd0;\n\
         \x20   s_ready <= 1'b0;\n\
         \x20 end else begin\n\
         \x20   s_ready <= (wr_ptr - rd_ptr) < 5'd16;\n\
         \x20   if (s_valid && s_ready) begin\n\
         \x20     mem[wr_ptr[3:0]] <= s_data;\n\
         \x20     wr_ptr <= wr_ptr + 5'd1;\n\
         \x20   end\n\
         \x20   if (m_ready) begin\n\
         \x20     m_data <= mem[rd_ptr[3:0]];\n\
         \x20     rd_ptr <= rd_ptr + 5'd1;\n\
         \x20   end\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    // The flag is one cycle stale but its threshold leaves zero margin.
    assert_golden(&f, &src, "L0606", "s_ready <= (wr_ptr - rd_ptr) < 5'd16", "< 5'd16");
}

#[test]
fn occupancy_is_silent_on_correct_skid_buffer() {
    // A margin-aware skid-buffer FIFO: the registered ready threshold
    // (count < 13) absorbs one stale cycle *and* one in-flight skid word
    // (13 + 1 + 1 + 1 = 16 <= depth 16). The occupancy pass must stay
    // silent — this is the fixed C4 shape.
    let (f, _) = lint(
        "module t(input clk, input rst, input s_valid, input [7:0] s_data,\n\
         \x20        input m_ready, output s_ready, output reg [7:0] m_data);\n\
         reg [7:0] mem [0:15];\n\
         reg [4:0] wr_ptr;\n\
         reg [4:0] rd_ptr;\n\
         reg [7:0] s_reg;\n\
         reg s_reg_v;\n\
         reg s_ready_r;\n\
         wire [4:0] count;\n\
         assign count = wr_ptr - rd_ptr;\n\
         assign s_ready = s_ready_r;\n\
         always @(posedge clk) begin\n\
         \x20 if (rst) begin\n\
         \x20   wr_ptr <= 5'd0;\n\
         \x20   rd_ptr <= 5'd0;\n\
         \x20   s_reg_v <= 1'b0;\n\
         \x20   s_ready_r <= 1'b0;\n\
         \x20 end else begin\n\
         \x20   s_ready_r <= count < 5'd13;\n\
         \x20   if (s_reg_v && count < 5'd16) begin\n\
         \x20     mem[wr_ptr[3:0]] <= s_reg;\n\
         \x20     wr_ptr <= wr_ptr + 5'd1;\n\
         \x20     s_reg_v <= 1'b0;\n\
         \x20   end\n\
         \x20   if (s_valid && s_ready_r) begin\n\
         \x20     s_reg <= s_data;\n\
         \x20     s_reg_v <= 1'b1;\n\
         \x20   end\n\
         \x20   if (m_ready) begin\n\
         \x20     m_data <= mem[rd_ptr[3:0]];\n\
         \x20     rd_ptr <= rd_ptr + 5'd1;\n\
         \x20   end\n\
         \x20 end\n\
         end\nendmodule\n",
        "t",
    );
    let occupancy: Vec<_> = f
        .iter()
        .filter(|e| matches!(e.code.as_str(), "L0605" | "L0606"))
        .collect();
    assert!(
        occupancy.is_empty(),
        "correct skid buffer must not trip the occupancy pass: {occupancy:?}"
    );
}

#[test]
fn sink_is_reexported_for_custom_passes() {
    // The public surface for third-party passes: implement LintPass, run
    // against a sink.
    struct Noop;
    impl LintPass for Noop {
        fn id(&self) -> &'static str {
            "noop"
        }
        fn codes(&self) -> &'static [hwdbg_diag::ErrorCode] {
            &[]
        }
        fn run(&self, _: &Design, _: &mut LintSink<'_>) {}
    }
    let d = design("module t(input clk, output reg y); always @(posedge clk) y <= 1'b1; endmodule\n", "t");
    let cfg = LintConfig::new();
    let mut sink = LintSink::new(&cfg);
    Noop.run(&d, &mut sink);
    assert!(sink.findings().is_empty());
}
