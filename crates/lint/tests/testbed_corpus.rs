//! Lint effectiveness over the 20-bug testbed: every buggy design must
//! produce exactly its snapshot of L-codes, and every fixed design must be
//! completely clean — the zero-false-positive contract that makes the
//! warnings trustworthy.

use hwdbg_testbed::lint_expect::expected_lints;
use hwdbg_testbed::{buggy_design, fixed_design, BugId};

fn codes(design: &hwdbg_dataflow::Design) -> Vec<String> {
    let mut codes: Vec<String> = hwdbg_lint::run_default(design)
        .iter()
        .map(|e| e.code.as_str().to_owned())
        .collect();
    codes.sort();
    codes.dedup();
    codes
}

#[test]
fn buggy_designs_match_snapshot() {
    for id in BugId::ALL {
        let design = buggy_design(id).expect("buggy design elaborates");
        let got = codes(&design);
        let want: Vec<String> = expected_lints(id).iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(
            got, want,
            "{id}: lint codes drifted from the checked-in snapshot"
        );
    }
}

#[test]
fn fixed_designs_are_clean() {
    for id in BugId::ALL {
        let design = fixed_design(id).expect("fixed design elaborates");
        let findings = hwdbg_lint::run_default(&design);
        assert!(
            findings.is_empty(),
            "{id}: fixed design must be lint-clean, got: {}",
            findings
                .iter()
                .map(|e| format!("{} {}", e.code.as_str(), e.message))
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn findings_carry_spans_into_the_source() {
    // Every finding on a buggy design must anchor a span inside the file.
    for id in BugId::ALL {
        if expected_lints(id).is_empty() {
            continue;
        }
        let meta = hwdbg_testbed::metadata(id);
        let design = buggy_design(id).expect("buggy design elaborates");
        for finding in hwdbg_lint::run_default(&design) {
            let span = finding
                .span
                .unwrap_or_else(|| panic!("{id}: finding {} has no span", finding.code.as_str()));
            assert!(
                span.start < meta.source.len() && span.end <= meta.source.len(),
                "{id}: span {span:?} falls outside the source"
            );
            // Rendering with the source must produce a caret excerpt.
            let rendered = finding.render(Some(meta.source));
            assert!(
                rendered.contains('^'),
                "{id}: rendered finding lacks a source excerpt:\n{rendered}"
            );
        }
    }
}
