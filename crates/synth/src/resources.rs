//! Resource estimation: registers, logic cells, and block RAM bits.
//!
//! This is the stand-in for running Quartus/Vivado (which we cannot ship).
//! The model is deliberately simple and fully documented so the *shape*
//! claims of the paper's Figures 2–3 — BRAM grows linearly with recording
//! buffer depth while register/logic overhead stays flat and small — follow
//! from first principles rather than curve fitting:
//!
//! * **registers** — one flip-flop per bit of every clocked register;
//!   memories below [`BRAM_DEPTH_THRESHOLD`] are distributed (register/LUT
//!   RAM) and also count here.
//! * **bram_bits** — `width × depth` for every deeper memory, and for the
//!   storage inside FIFO/RAM/trace-buffer IP instances.
//! * **logic_cells** — a width-weighted count of operator nodes
//!   (see [`expr_cost`]), plus one mux strip per conditionally assigned
//!   signal, approximating LUT packing.

use crate::platform::Platform;
use hwdbg_dataflow::Design;
use hwdbg_rtl::{BinaryOp, Expr, LValue, Stmt, UnaryOp};
use std::ops::Sub;

/// Memories at least this deep map to block RAM; shallower ones stay in
/// logic (matching what synthesizers do with small register files).
pub const BRAM_DEPTH_THRESHOLD: u64 = 16;

/// Estimated resource usage of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceReport {
    /// Flip-flop count.
    pub registers: u64,
    /// Logic cell (ALM/LUT) count.
    pub logic_cells: u64,
    /// Block RAM bits.
    pub bram_bits: u64,
}

impl ResourceReport {
    /// Overhead of `self` relative to platform capacity, in percent,
    /// as `(registers %, logic %, bram %)`.
    pub fn normalized(&self, platform: Platform) -> (f64, f64, f64) {
        (
            100.0 * self.registers as f64 / platform.registers() as f64,
            100.0 * self.logic_cells as f64 / platform.logic_cells() as f64,
            100.0 * self.bram_bits as f64 / platform.bram_bits() as f64,
        )
    }
}

impl Sub for ResourceReport {
    type Output = ResourceReport;

    /// Saturating difference: instrumented − baseline = overhead.
    fn sub(self, rhs: ResourceReport) -> ResourceReport {
        ResourceReport {
            registers: self.registers.saturating_sub(rhs.registers),
            logic_cells: self.logic_cells.saturating_sub(rhs.logic_cells),
            bram_bits: self.bram_bits.saturating_sub(rhs.bram_bits),
        }
    }
}

/// Estimates the resources of an elaborated design.
pub fn estimate(design: &Design) -> ResourceReport {
    let mut r = ResourceReport::default();

    for sig in design.signals.values() {
        if !sig.is_state() {
            continue;
        }
        match sig.mem_depth {
            Some(depth) if depth >= BRAM_DEPTH_THRESHOLD => {
                r.bram_bits += u64::from(sig.width) * depth;
            }
            Some(depth) => {
                r.registers += u64::from(sig.width) * depth;
            }
            None => {
                r.registers += u64::from(sig.width);
            }
        }
    }

    for bb in &design.blackboxes {
        let width = bb.params.get("WIDTH").map_or(8, |b| b.to_u64());
        let depth = bb
            .params
            .get("DEPTH")
            .or_else(|| bb.params.get("NUMWORDS"))
            .map_or(16, |b| b.to_u64());
        r.bram_bits += width * depth;
        // Control state of the IP (pointers, counters): ~2·clog2(depth)+8.
        r.registers += 2 * u64::from(hwdbg_dataflow::clog2(depth)) + 8;
        r.logic_cells += u64::from(hwdbg_dataflow::clog2(depth)) * 4 + 8;
    }

    for c in &design.combs {
        r.logic_cells += stmt_cost(&c.body, design, false);
    }
    for p in &design.procs {
        r.logic_cells += stmt_cost(&p.body, design, false);
    }

    r
}

/// Logic cost of a statement tree; `conditional` is true once the
/// statement sits under an `if`/`case`, adding a mux strip per assignment.
fn stmt_cost(stmt: &Stmt, design: &Design, conditional: bool) -> u64 {
    match stmt {
        Stmt::Block(stmts) => stmts
            .iter()
            .map(|s| stmt_cost(s, design, conditional))
            .sum(),
        Stmt::If { cond, then, els } => {
            expr_cost(cond, design)
                + stmt_cost(then, design, true)
                + els.as_ref().map_or(0, |e| stmt_cost(e, design, true))
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            let sel_w = u64::from(design.expr_width(expr).unwrap_or(1));
            let mut cost = expr_cost(expr, design);
            for arm in arms {
                // One equality comparator per label.
                cost += arm.labels.len() as u64 * sel_w.div_ceil(4).max(1);
                cost += stmt_cost(&arm.body, design, true);
            }
            if let Some(d) = default {
                cost += stmt_cost(d, design, true);
            }
            cost
        }
        Stmt::Assign { lhs, rhs, .. } => {
            let mut cost = expr_cost(rhs, design);
            if conditional {
                // Enable mux in front of the register/wire.
                cost += u64::from(design.lvalue_width(lhs).unwrap_or(1)).div_ceil(2);
            }
            // Dynamic-index writes need an address decoder.
            if let LValue::Index(_, idx) = lhs {
                cost += expr_cost(idx, design)
                    + u64::from(design.expr_width(idx).unwrap_or(1));
            }
            cost
        }
        Stmt::For { cond, step, body, .. } => {
            // Unrolled in hardware; approximate with 4 iterations' worth.
            4 * (expr_cost(cond, design)
                + expr_cost(step, design)
                + stmt_cost(body, design, true))
        }
        // `$display` itself synthesizes to nothing; SignalCat replaces it
        // with trace-buffer plumbing that is counted as real logic.
        Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => 0,
    }
}

/// Logic cost of an expression, in logic cells.
///
/// Cost table (w = operand width): add/sub `w`, mul `w²/4`, div/mod `w²`,
/// bitwise `⌈w/2⌉`, equality `⌈w/4⌉`, relational `⌈w/2⌉`, logical ops 1,
/// reductions `⌈w/4⌉`, constant shifts 0, variable shifts `w`,
/// mux (ternary) `⌈w/2⌉ + cond`.
pub fn expr_cost(expr: &Expr, design: &Design) -> u64 {
    let w = |e: &Expr| u64::from(design.expr_width(e).unwrap_or(1));
    match expr {
        Expr::Literal { .. } | Expr::Ident(_) => 0,
        Expr::Unary(op, inner) => {
            let inner_cost = expr_cost(inner, design);
            let width = w(inner);
            inner_cost
                + match op {
                    UnaryOp::Not => 0, // folds into downstream LUTs
                    UnaryOp::Neg => width,
                    UnaryOp::LogNot => 1,
                    _ => width.div_ceil(4).max(1),
                }
        }
        Expr::Binary(op, l, r) => {
            let width = w(l).max(w(r));
            let own = match op {
                BinaryOp::Add | BinaryOp::Sub => width,
                BinaryOp::Mul => (width * width).div_ceil(4),
                BinaryOp::Div | BinaryOp::Mod => width * width,
                BinaryOp::And | BinaryOp::Or | BinaryOp::Xor | BinaryOp::Xnor => {
                    width.div_ceil(2)
                }
                BinaryOp::Eq | BinaryOp::Ne => width.div_ceil(4).max(1),
                BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                    width.div_ceil(2).max(1)
                }
                BinaryOp::LogAnd | BinaryOp::LogOr => 1,
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                    if matches!(**r, Expr::Literal { .. }) {
                        0 // constant shift is wiring
                    } else {
                        width
                    }
                }
            };
            own + expr_cost(l, design) + expr_cost(r, design)
        }
        Expr::Ternary(c, t, f) => {
            w(t).max(w(f)).div_ceil(2)
                + expr_cost(c, design)
                + expr_cost(t, design)
                + expr_cost(f, design)
        }
        Expr::Index(n, idx) => {
            let is_mem = design
                .signals
                .get(n)
                .is_some_and(|s| s.mem_depth.is_some());
            let own = if matches!(**idx, Expr::Literal { .. }) {
                0
            } else if is_mem {
                u64::from(design.expr_width(idx).unwrap_or(1)) // address decode
            } else {
                u64::from(design.signals.get(n).map_or(1, |s| s.width)).div_ceil(4)
            };
            own + expr_cost(idx, design)
        }
        Expr::Range(_, _, _) => 0, // constant select is wiring
        Expr::Concat(parts) => parts.iter().map(|p| expr_cost(p, design)).sum(),
        Expr::Repeat(_, body) => expr_cost(body, design),
        Expr::WidthCast(_, inner) | Expr::SignCast(_, inner) => expr_cost(inner, design),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_rtl::parse;

    fn d(src: &str) -> Design {
        elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap()
    }

    #[test]
    fn registers_count_flop_bits() {
        let design = d("module m(input clk, output reg [7:0] a);
            reg [3:0] b;
            always @(posedge clk) begin a <= a + 8'd1; b <= b + 4'd1; end
        endmodule");
        let r = estimate(&design);
        assert_eq!(r.registers, 12);
    }

    #[test]
    fn deep_memory_is_bram_shallow_is_registers() {
        let deep = d("module m(input clk, input [7:0] x, input [9:0] a);
            reg [7:0] mem [0:1023];
            always @(posedge clk) mem[a] <= x;
        endmodule");
        assert_eq!(estimate(&deep).bram_bits, 8 * 1024);
        let shallow = d("module m(input clk, input [7:0] x, input [1:0] a);
            reg [7:0] mem [0:3];
            always @(posedge clk) mem[a] <= x;
        endmodule");
        assert_eq!(estimate(&shallow).bram_bits, 0);
        assert_eq!(estimate(&shallow).registers, 32);
    }

    #[test]
    fn bram_scales_linearly_with_trace_buffer_depth() {
        let make = |depth: u32| {
            let src = format!(
                "module m(input clk, input e, input [31:0] x);
                    trace_buffer #(.WIDTH(32), .DEPTH({depth})) tb
                        (.clock(clk), .enable(e), .din(x));
                 endmodule"
            );
            let lib = hwdbg_ip_spec_stub();
            estimate(&elaborate(&parse(&src).unwrap(), "m", &lib).unwrap())
        };
        let r1 = make(1024);
        let r2 = make(2048);
        let r4 = make(4096);
        assert_eq!(r2.bram_bits - r1.bram_bits, 32 * 1024);
        assert_eq!(r4.bram_bits - r2.bram_bits, 32 * 2048);
        // Register/logic cost does not depend on depth beyond clog2 growth.
        assert!(r4.registers - r1.registers <= 8);
    }

    /// A minimal trace_buffer spec so this crate's tests don't depend on
    /// hwdbg-ip (which depends on the simulator).
    fn hwdbg_ip_spec_stub() -> impl hwdbg_dataflow::BlackboxLib {
        use hwdbg_dataflow::*;
        struct Stub(BlackboxSpec);
        impl BlackboxLib for Stub {
            fn spec(&self, module: &str) -> Option<&BlackboxSpec> {
                (module == "trace_buffer").then_some(&self.0)
            }
        }
        Stub(BlackboxSpec {
            name: "trace_buffer".into(),
            ports: vec![
                BbPort {
                    name: "clock".into(),
                    dir: BbDir::Input,
                    width: WidthSpec::Const(1),
                    is_clock: true,
                },
                BbPort {
                    name: "enable".into(),
                    dir: BbDir::Input,
                    width: WidthSpec::Const(1),
                    is_clock: false,
                },
                BbPort {
                    name: "din".into(),
                    dir: BbDir::Input,
                    width: WidthSpec::Param("WIDTH".into()),
                    is_clock: false,
                },
            ],
            relations: vec![],
        })
    }

    #[test]
    fn wider_adders_cost_more() {
        let narrow = d("module m(input [3:0] a, input [3:0] b, output [3:0] s);
            assign s = a + b; endmodule");
        let wide = d("module m(input [31:0] a, input [31:0] b, output [31:0] s);
            assign s = a + b; endmodule");
        assert!(estimate(&wide).logic_cells > estimate(&narrow).logic_cells);
    }

    #[test]
    fn normalization_percentages() {
        let r = ResourceReport {
            registers: 17_088,
            logic_cells: 4_272,
            bram_bits: 555_622,
        };
        let (regs, logic, bram) = r.normalized(Platform::IntelHarp);
        assert!((regs - 1.0).abs() < 0.01, "{regs}");
        assert!((logic - 1.0).abs() < 0.01, "{logic}");
        assert!((bram - 1.0).abs() < 0.01, "{bram}");
    }

    #[test]
    fn overhead_subtraction_saturates() {
        let a = ResourceReport {
            registers: 10,
            logic_cells: 5,
            bram_bits: 0,
        };
        let b = ResourceReport {
            registers: 4,
            logic_cells: 9,
            bram_bits: 0,
        };
        let d = a - b;
        assert_eq!(d.registers, 6);
        assert_eq!(d.logic_cells, 0);
    }
}
