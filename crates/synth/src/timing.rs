//! Static timing model: combinational logic levels → achievable frequency.
//!
//! The paper reports that 18 of the 20 instrumented designs still meet
//! their target clock and that Optimus drops from 400 MHz to 200 MHz. We
//! reproduce that claim with a logic-level model: every signal gets a
//! combinational *depth* (levels of logic between it and the nearest
//! register/input), the design's critical path is the deepest register-to-
//! register path, and achievable frequency follows a per-level delay
//! budget.

use hwdbg_dataflow::{Design, SigKind};
use hwdbg_rtl::{BinaryOp, Expr, Stmt, UnaryOp};
use std::collections::BTreeMap;

/// Fixed overhead per path (clock-to-out + setup + routing), nanoseconds.
pub const FIXED_NS: f64 = 0.4;
/// Delay per logic level, nanoseconds.
pub const LEVEL_NS: f64 = 0.3;

/// Result of timing estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Depth (logic levels) of the critical combinational path.
    pub critical_levels: u32,
    /// Estimated achievable clock frequency in MHz.
    pub fmax_mhz: f64,
}

impl TimingReport {
    /// True if the design can run at `target_mhz`.
    pub fn meets(&self, target_mhz: f64) -> bool {
        self.fmax_mhz + 1e-9 >= target_mhz
    }
}

/// Estimates the critical combinational depth and Fmax of a design.
pub fn estimate_timing(design: &Design) -> TimingReport {
    // Depth of each signal: registers and inputs launch at depth 0.
    let mut depth: BTreeMap<String, u32> = BTreeMap::new();
    for sig in design.signals.values() {
        if matches!(sig.kind, SigKind::Reg | SigKind::Input | SigKind::Undriven) {
            depth.insert(sig.name.clone(), 0);
        }
    }
    // Blackbox outputs behave like registered outputs (depth 0 at launch).
    for bb in &design.blackboxes {
        for lv in bb.out_conns.values() {
            for t in lv.target_names() {
                depth.insert(t.to_owned(), 0);
            }
        }
    }

    // Relax combinational drivers until stable (acyclic in a settling
    // design, so at most |combs| passes).
    let mut critical: u32 = 0;
    for _ in 0..=design.combs.len() {
        let mut changed = false;
        for c in &design.combs {
            let in_depth = c
                .reads
                .iter()
                .filter_map(|r| depth.get(r).copied())
                .max()
                .unwrap_or(0);
            let body_depth = stmt_depth(&c.body, design);
            let out_depth = in_depth + body_depth;
            for wsig in &c.writes {
                let cur = depth.get(wsig).copied().unwrap_or(0);
                if out_depth > cur {
                    depth.insert(wsig.clone(), out_depth);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Paths end at clocked-process inputs and blackbox inputs.
    for p in &design.procs {
        let in_depth = p
            .reads
            .iter()
            .filter_map(|r| depth.get(r).copied())
            .max()
            .unwrap_or(0);
        critical = critical.max(in_depth + stmt_depth(&p.body, design));
    }
    for bb in &design.blackboxes {
        for e in bb.in_conns.values() {
            let in_depth = e
                .idents()
                .iter()
                .filter_map(|r| depth.get(*r).copied())
                .max()
                .unwrap_or(0);
            critical = critical.max(in_depth + expr_depth(e, design));
        }
    }
    // Pure comb paths to outputs also count.
    for sig in design.signals.values() {
        if sig.kind == SigKind::Output || sig.kind == SigKind::Comb {
            critical = critical.max(depth.get(&sig.name).copied().unwrap_or(0));
        }
    }

    let period_ns = FIXED_NS + LEVEL_NS * f64::from(critical);
    TimingReport {
        critical_levels: critical,
        fmax_mhz: 1000.0 / period_ns,
    }
}

/// Depth contributed by a statement tree: condition depth stacks on top of
/// the deepest contained expression (the mux select path).
fn stmt_depth(stmt: &Stmt, design: &Design) -> u32 {
    match stmt {
        Stmt::Block(stmts) => stmts.iter().map(|s| stmt_depth(s, design)).max().unwrap_or(0),
        Stmt::If { cond, then, els } => {
            let branches = stmt_depth(then, design)
                .max(els.as_ref().map_or(0, |e| stmt_depth(e, design)));
            expr_depth(cond, design).max(branches) + 1 // mux level
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            let mut inner = default.as_ref().map_or(0, |d| stmt_depth(d, design));
            for arm in arms {
                inner = inner.max(stmt_depth(&arm.body, design));
            }
            expr_depth(expr, design).max(inner) + 2 // compare + mux
        }
        Stmt::Assign { rhs, .. } => expr_depth(rhs, design),
        Stmt::For { body, .. } => 2 * stmt_depth(body, design).max(1),
        Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => 0,
    }
}

/// Logic levels of an expression tree.
///
/// Levels per node: carry-chain arithmetic `1 + ⌈log2 w / 8⌉` (fast carry),
/// multiply 4, divide 8, compare 1–2, bitwise/logical 1, variable shift
/// `⌈log2 w⌉ / 2`, mux 1, wiring (selects/concats/casts) 0.
pub fn expr_depth(expr: &Expr, design: &Design) -> u32 {
    let w = |e: &Expr| design.expr_width(e).unwrap_or(1);
    match expr {
        Expr::Literal { .. } | Expr::Ident(_) => 0,
        Expr::Unary(op, inner) => {
            expr_depth(inner, design)
                + match op {
                    UnaryOp::Not => 0,
                    UnaryOp::Neg => 1 + log2_ceil(w(inner)) / 8,
                    UnaryOp::LogNot => 1,
                    _ => (log2_ceil(w(inner)) / 2).max(1), // reduction tree
                }
        }
        Expr::Binary(op, l, r) => {
            let width = w(l).max(w(r));
            let own = match op {
                BinaryOp::Add | BinaryOp::Sub => 1 + log2_ceil(width) / 8,
                BinaryOp::Mul => 4,
                BinaryOp::Div | BinaryOp::Mod => 8,
                BinaryOp::Eq | BinaryOp::Ne => (log2_ceil(width) / 2).max(1),
                BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                    1 + log2_ceil(width) / 8
                }
                BinaryOp::LogAnd | BinaryOp::LogOr => 1,
                BinaryOp::And | BinaryOp::Or | BinaryOp::Xor | BinaryOp::Xnor => 1,
                BinaryOp::Shl | BinaryOp::Shr | BinaryOp::AShr => {
                    if matches!(**r, Expr::Literal { .. }) {
                        0
                    } else {
                        (log2_ceil(width) / 2).max(1)
                    }
                }
            };
            own + expr_depth(l, design).max(expr_depth(r, design))
        }
        Expr::Ternary(c, t, f) => {
            1 + expr_depth(c, design)
                .max(expr_depth(t, design))
                .max(expr_depth(f, design))
        }
        Expr::Index(_, idx) => {
            if matches!(**idx, Expr::Literal { .. }) {
                expr_depth(idx, design)
            } else {
                1 + expr_depth(idx, design) // decode mux
            }
        }
        Expr::Range(_, _, _) => 0,
        Expr::Concat(parts) => parts.iter().map(|p| expr_depth(p, design)).max().unwrap_or(0),
        Expr::Repeat(_, body) => expr_depth(body, design),
        Expr::WidthCast(_, inner) | Expr::SignCast(_, inner) => expr_depth(inner, design),
    }
}

fn log2_ceil(w: u32) -> u32 {
    hwdbg_dataflow::clog2(u64::from(w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_rtl::parse;

    fn t(src: &str) -> TimingReport {
        estimate_timing(&elaborate(&parse(src).unwrap(), "m", &NoBlackboxes).unwrap())
    }

    #[test]
    fn registered_pipeline_is_fast() {
        let r = t("module m(input clk, input [7:0] d, output reg [7:0] q);
            reg [7:0] s;
            always @(posedge clk) begin s <= d + 8'd1; q <= s + 8'd1; end
        endmodule");
        assert!(r.critical_levels <= 2, "{r:?}");
        assert!(r.meets(400.0), "{r:?}");
    }

    #[test]
    fn long_comb_chain_is_slow() {
        let mut src = String::from("module m(input clk, input [31:0] d, output reg [31:0] q);\n");
        for i in 0..12 {
            let prev = if i == 0 { "d".into() } else { format!("w{}", i - 1) };
            src.push_str(&format!("wire [31:0] w{i}; assign w{i} = {prev} * 32'd3 + 32'd1;\n"));
        }
        src.push_str("always @(posedge clk) q <= w11;\nendmodule");
        let r = t(&src);
        assert!(r.critical_levels > 30, "{r:?}");
        assert!(!r.meets(200.0), "{r:?}");
    }

    #[test]
    fn deeper_conditions_slow_the_clock() {
        let shallow = t("module m(input clk, input a, output reg q);
            always @(posedge clk) if (a) q <= 1'b1;
        endmodule");
        let deep = t("module m(input clk, input [63:0] a, input [63:0] b, output reg q);
            always @(posedge clk) if ((a * b) > 64'd100) q <= 1'b1;
        endmodule");
        assert!(deep.critical_levels > shallow.critical_levels);
        assert!(deep.fmax_mhz < shallow.fmax_mhz);
    }
}
