//! Resource-estimation and timing model for FPGA platforms.
//!
//! The paper measures instrumentation overhead with Quartus 17.0 (Intel
//! HARP designs) and Vivado 2020.2 (Xilinx KC705 designs). Proprietary
//! synthesizers cannot ship with this reproduction, so this crate provides
//! a transparent substitute documented in `DESIGN.md`:
//!
//! * [`estimate`] — registers / logic cells / block-RAM bits from a
//!   width-weighted operator cost model ([`resources`]);
//! * [`estimate_timing`] — combinational logic levels → achievable MHz
//!   ([`timing`]), used to reproduce the paper's target-frequency claims;
//! * [`Platform`] — capacity tables for Intel HARP (Arria 10 GX1150) and
//!   Xilinx KC705 (Kintex-7 325T) to normalize overheads like Figures 2–3.
//!
//! # Examples
//!
//! ```
//! use hwdbg_synth::{estimate, estimate_timing, Platform};
//! use hwdbg_dataflow::{elaborate, NoBlackboxes};
//!
//! let design = elaborate(
//!     &hwdbg_rtl::parse(
//!         "module m(input clk, input [15:0] d, output reg [15:0] q);
//!            always @(posedge clk) q <= q + d;
//!          endmodule",
//!     )?,
//!     "m",
//!     &NoBlackboxes,
//! )?;
//! let report = estimate(&design);
//! assert_eq!(report.registers, 16);
//! let timing = estimate_timing(&design);
//! assert!(timing.meets(200.0));
//! let (_regs_pct, _logic_pct, _bram_pct) = report.normalized(Platform::IntelHarp);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod platform;
pub mod resources;
pub mod timing;

pub use platform::Platform;
pub use resources::{estimate, expr_cost, ResourceReport, BRAM_DEPTH_THRESHOLD};
pub use timing::{estimate_timing, expr_depth, TimingReport, FIXED_NS, LEVEL_NS};
