//! Target platform descriptions used to normalize resource overheads.
//!
//! The paper evaluates on two boards: the Intel HARP platform (an Arria 10
//! GX 1150 next to a Xeon) synthesized with Quartus 17.0, and the Xilinx
//! KC705 evaluation kit (Kintex-7 325T) synthesized with Vivado 2020.2.
//! Figures 2 and 3 report overheads relative to these devices' totals, so
//! we carry their capacity tables.

use std::fmt;

/// An FPGA platform with its device capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Intel HARP: Arria 10 GX 1150 (Quartus target in the paper).
    IntelHarp,
    /// Xilinx KC705: Kintex-7 XC7K325T (Vivado target in the paper).
    XilinxKc705,
}

impl Platform {
    /// Total logic cells (ALMs for Intel, LUTs for Xilinx).
    pub fn logic_cells(self) -> u64 {
        match self {
            Platform::IntelHarp => 427_200,
            Platform::XilinxKc705 => 203_800,
        }
    }

    /// Total flip-flops.
    pub fn registers(self) -> u64 {
        match self {
            Platform::IntelHarp => 1_708_800,
            Platform::XilinxKc705 => 407_600,
        }
    }

    /// Total block RAM bits (M20K blocks on Arria 10, BRAM36 on Kintex-7).
    pub fn bram_bits(self) -> u64 {
        match self {
            // 2,713 M20K blocks × 20,480 bits.
            Platform::IntelHarp => 55_562_240,
            // 445 BRAM36 blocks × 36,864 bits.
            Platform::XilinxKc705 => 16_404_480,
        }
    }

    /// Human-readable name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Platform::IntelHarp => "Intel HARP (Arria 10 GX1150)",
            Platform::XilinxKc705 => "Xilinx KC705 (Kintex-7 325T)",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_sane() {
        assert!(Platform::IntelHarp.logic_cells() > Platform::XilinxKc705.logic_cells());
        assert!(Platform::IntelHarp.bram_bits() > Platform::XilinxKc705.bram_bits());
        assert_eq!(Platform::IntelHarp.registers(), 4 * Platform::IntelHarp.logic_cells());
    }
}
