//! Edge-case coverage for the tools: trigger windows, explicit clocks,
//! multi-clock instrumentation, and configuration errors.

use hwdbg_dataflow::{elaborate, resolve, PropGraph};
use hwdbg_ip::{StdIpLib, StdModels};
use hwdbg_rtl::parse_expr;
use hwdbg_sim::{SimConfig, Simulator};
use hwdbg_tools::losscheck::LossCheckConfig;
use hwdbg_tools::signalcat::SignalCatConfig;
use hwdbg_tools::statmon::Event;
use hwdbg_tools::{LossCheck, SignalCat, StatisticsMonitor, ToolError};

fn design(src: &str, top: &str) -> hwdbg_dataflow::Design {
    elaborate(&hwdbg_rtl::parse(src).unwrap(), top, &StdIpLib::new()).unwrap()
}

fn sim_of(d: hwdbg_dataflow::Design) -> Simulator {
    Simulator::new(d, &StdModels, SimConfig::default()).unwrap()
}

const COUNTER: &str = r#"module m(input clk, input go, output reg [7:0] n, output reg alarm);
    always @(posedge clk) begin
        alarm <= 1'b0;
        if (go) begin
            n <= n + 8'd1;
            $display("n=%0d", n);
            if (n == 8'd5) begin
                alarm <= 1'b1;
                $display("alarm fired");
            end
        end
    end
endmodule"#;

#[test]
fn signalcat_post_trigger_window_limits_capture() {
    let lib = StdIpLib::new();
    let d = design(COUNTER, "m");
    let cfg = SignalCatConfig {
        buffer_depth: 64,
        post_trigger: 2,
        trigger: Some(parse_expr("alarm").unwrap()),
    };
    let info = SignalCat::instrument(&d, &cfg).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("go", 1).unwrap();
    sim.run("clk", 30).unwrap();
    let rec = SignalCat::reconstruct(&info, &sim);
    // Recording stopped two cycles after the alarm; the counter kept going
    // but nothing past the window was captured.
    let last = rec.last().unwrap();
    assert!(last.cycle <= 10, "{rec:?}");
    assert!(rec.iter().any(|r| r.message == "alarm fired"));
    assert!(rec.len() < 20, "window must bound the capture: {}", rec.len());
}

#[test]
fn statmon_explicit_clock_and_multibit_event() {
    // Two clock domains; the event is sampled on the named clock, and a
    // multi-bit event expression is reduced to truthiness.
    let src = "module m(input clka, input clkb, input [3:0] v);
        reg [7:0] t;
        always @(posedge clka) t <= t + 8'd1;
        reg [7:0] u;
        always @(posedge clkb) u <= u + 8'd1;
    endmodule";
    let d = design(src, "m");
    let events = vec![Event::new("nonzero", parse_expr("v").unwrap())];
    let info = StatisticsMonitor::instrument(&d, &events, Some("clkb")).unwrap();
    let lib = StdIpLib::new();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("v", 3).unwrap();
    // Events tick on clkb only.
    for _ in 0..4 {
        sim.step("clka").unwrap();
    }
    for _ in 0..3 {
        sim.step("clkb").unwrap();
    }
    let counts = StatisticsMonitor::counts(&info, &sim);
    assert_eq!(counts["nonzero"], 3);
}

#[test]
fn losscheck_rejects_sink_equal_source_adjacent() {
    // Direct input→output with no intermediate register: nothing to track.
    let src = "module m(input clk, input [7:0] d, input v, output reg [7:0] q);
        always @(posedge clk) if (v) q <= d;
    endmodule";
    let d = design(src, "m");
    let g = PropGraph::build(&d, &StdIpLib::new()).unwrap();
    let cfg = LossCheckConfig {
        source: "d".into(),
        sink: "q".into(),
        source_valid: "v".into(),
    };
    assert!(matches!(
        LossCheck::instrument(&d, &g, &cfg),
        Err(ToolError::NothingToInstrument(_))
    ));
}

#[test]
fn losscheck_through_scfifo_ip_model() {
    // The propagation path runs through a closed-source FIFO: the IP model
    // supplies the relations, and the staging register after the FIFO is
    // tracked.
    let src = "module m(input clk, input [7:0] din, input din_valid,
                        input pop, input fwd, output reg [7:0] out);
        wire [7:0] head;
        wire empty;
        reg [7:0] stage;
        scfifo #(.WIDTH(8), .DEPTH(8)) f0 (.clock(clk), .data(din),
            .wrreq(din_valid), .rdreq(pop), .q(head), .empty(empty));
        always @(posedge clk) begin
            if (pop) stage <= head;
            if (fwd) out <= stage;
        end
    endmodule";
    let lib = StdIpLib::new();
    let d = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &lib).unwrap();
    let g = PropGraph::build(&d, &lib).unwrap();
    let cfg = LossCheckConfig {
        source: "din".into(),
        sink: "out".into(),
        source_valid: "din_valid".into(),
    };
    let info = LossCheck::instrument(&d, &g, &cfg).unwrap();
    assert!(info.tracked.contains(&"stage".to_string()), "{info:?}");
    // Overwrite `stage` twice without forwarding: loss detected.
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("din_valid", 1).unwrap();
    for v in [1u64, 2] {
        sim.poke_u64("din", v).unwrap();
        sim.step("clk").unwrap();
    }
    sim.poke_u64("din_valid", 0).unwrap();
    sim.poke_u64("pop", 1).unwrap();
    sim.step("clk").unwrap(); // stage <= 1
    sim.step("clk").unwrap(); // stage <= 2 (1 never forwarded: loss)
    sim.poke_u64("pop", 0).unwrap();
    for _ in 0..3 {
        sim.step("clk").unwrap();
    }
    assert!(LossCheck::reports(sim.logs()).contains("stage"), "{:?}", sim.logs());
}

#[test]
fn signalcat_two_clock_domains_get_two_buffers() {
    let src = r#"module m(input clka, input clkb, input [3:0] x);
        reg [3:0] p;
        reg [3:0] q;
        always @(posedge clka) begin
            p <= x;
            $display("A %0d", x);
        end
        always @(posedge clkb) begin
            q <= x;
            $display("B %0d", x);
        end
    endmodule"#;
    let d = design(src, "m");
    let info = SignalCat::instrument(&d, &SignalCatConfig::default()).unwrap();
    assert_eq!(info.buffers.len(), 2);
    let lib = StdIpLib::new();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("x", 7).unwrap();
    sim.step("clka").unwrap();
    sim.step("clka").unwrap();
    sim.step("clkb").unwrap();
    let rec = SignalCat::reconstruct(&info, &sim);
    let a = rec.iter().filter(|r| r.message.starts_with("A ")).count();
    let b = rec.iter().filter(|r| r.message.starts_with("B ")).count();
    assert_eq!((a, b), (2, 1), "{rec:?}");
}
