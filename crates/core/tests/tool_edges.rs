//! Edge-case coverage for the tools: trigger windows, explicit clocks,
//! multi-clock instrumentation, and configuration errors.

use hwdbg_dataflow::{elaborate, resolve, PropGraph};
use hwdbg_ip::{StdIpLib, StdModels};
use hwdbg_rtl::parse_expr;
use hwdbg_sim::{SimConfig, Simulator};
use hwdbg_tools::losscheck::LossCheckConfig;
use hwdbg_tools::signalcat::SignalCatConfig;
use hwdbg_tools::statmon::Event;
use hwdbg_tools::{LossCheck, SignalCat, StatisticsMonitor, ToolError};

fn design(src: &str, top: &str) -> hwdbg_dataflow::Design {
    elaborate(&hwdbg_rtl::parse(src).unwrap(), top, &StdIpLib::new()).unwrap()
}

fn sim_of(d: hwdbg_dataflow::Design) -> Simulator {
    Simulator::new(d, &StdModels, SimConfig::default()).unwrap()
}

const COUNTER: &str = r#"module m(input clk, input go, output reg [7:0] n, output reg alarm);
    always @(posedge clk) begin
        alarm <= 1'b0;
        if (go) begin
            n <= n + 8'd1;
            $display("n=%0d", n);
            if (n == 8'd5) begin
                alarm <= 1'b1;
                $display("alarm fired");
            end
        end
    end
endmodule"#;

#[test]
fn signalcat_post_trigger_window_limits_capture() {
    let lib = StdIpLib::new();
    let d = design(COUNTER, "m");
    let cfg = SignalCatConfig {
        buffer_depth: 64,
        post_trigger: 2,
        trigger: Some(parse_expr("alarm").unwrap()),
    };
    let info = SignalCat::instrument(&d, &cfg).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("go", 1).unwrap();
    sim.run("clk", 30).unwrap();
    let rec = SignalCat::reconstruct(&info, &sim);
    // Recording stopped two cycles after the alarm; the counter kept going
    // but nothing past the window was captured.
    let last = rec.last().unwrap();
    assert!(last.cycle <= 10, "{rec:?}");
    assert!(rec.iter().any(|r| r.message == "alarm fired"));
    assert!(rec.len() < 20, "window must bound the capture: {}", rec.len());
}

#[test]
fn statmon_explicit_clock_and_multibit_event() {
    // Two clock domains; the event is sampled on the named clock, and a
    // multi-bit event expression is reduced to truthiness.
    let src = "module m(input clka, input clkb, input [3:0] v);
        reg [7:0] t;
        always @(posedge clka) t <= t + 8'd1;
        reg [7:0] u;
        always @(posedge clkb) u <= u + 8'd1;
    endmodule";
    let d = design(src, "m");
    let events = vec![Event::new("nonzero", parse_expr("v").unwrap())];
    let info = StatisticsMonitor::instrument(&d, &events, Some("clkb")).unwrap();
    let lib = StdIpLib::new();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("v", 3).unwrap();
    // Events tick on clkb only.
    for _ in 0..4 {
        sim.step("clka").unwrap();
    }
    for _ in 0..3 {
        sim.step("clkb").unwrap();
    }
    let counts = StatisticsMonitor::counts(&info, &sim);
    assert_eq!(counts["nonzero"], 3);
}

#[test]
fn losscheck_rejects_sink_equal_source_adjacent() {
    // Direct input→output with no intermediate register: nothing to track.
    let src = "module m(input clk, input [7:0] d, input v, output reg [7:0] q);
        always @(posedge clk) if (v) q <= d;
    endmodule";
    let d = design(src, "m");
    let g = PropGraph::build(&d, &StdIpLib::new()).unwrap();
    let cfg = LossCheckConfig {
        source: "d".into(),
        sink: "q".into(),
        source_valid: "v".into(),
    };
    assert!(matches!(
        LossCheck::instrument(&d, &g, &cfg),
        Err(ToolError::NothingToInstrument(_))
    ));
}

#[test]
fn losscheck_through_scfifo_ip_model() {
    // The propagation path runs through a closed-source FIFO: the IP model
    // supplies the relations, and the staging register after the FIFO is
    // tracked.
    let src = "module m(input clk, input [7:0] din, input din_valid,
                        input pop, input fwd, output reg [7:0] out);
        wire [7:0] head;
        wire empty;
        reg [7:0] stage;
        scfifo #(.WIDTH(8), .DEPTH(8)) f0 (.clock(clk), .data(din),
            .wrreq(din_valid), .rdreq(pop), .q(head), .empty(empty));
        always @(posedge clk) begin
            if (pop) stage <= head;
            if (fwd) out <= stage;
        end
    endmodule";
    let lib = StdIpLib::new();
    let d = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &lib).unwrap();
    let g = PropGraph::build(&d, &lib).unwrap();
    let cfg = LossCheckConfig {
        source: "din".into(),
        sink: "out".into(),
        source_valid: "din_valid".into(),
    };
    let info = LossCheck::instrument(&d, &g, &cfg).unwrap();
    assert!(info.tracked.contains(&"stage".to_string()), "{info:?}");
    // Overwrite `stage` twice without forwarding: loss detected.
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("din_valid", 1).unwrap();
    for v in [1u64, 2] {
        sim.poke_u64("din", v).unwrap();
        sim.step("clk").unwrap();
    }
    sim.poke_u64("din_valid", 0).unwrap();
    sim.poke_u64("pop", 1).unwrap();
    sim.step("clk").unwrap(); // stage <= 1
    sim.step("clk").unwrap(); // stage <= 2 (1 never forwarded: loss)
    sim.poke_u64("pop", 0).unwrap();
    for _ in 0..3 {
        sim.step("clk").unwrap();
    }
    assert!(LossCheck::reports(sim.logs()).contains("stage"), "{:?}", sim.logs());
}

#[test]
fn signalcat_two_clock_domains_get_two_buffers() {
    let src = r#"module m(input clka, input clkb, input [3:0] x);
        reg [3:0] p;
        reg [3:0] q;
        always @(posedge clka) begin
            p <= x;
            $display("A %0d", x);
        end
        always @(posedge clkb) begin
            q <= x;
            $display("B %0d", x);
        end
    endmodule"#;
    let d = design(src, "m");
    let info = SignalCat::instrument(&d, &SignalCatConfig::default()).unwrap();
    assert_eq!(info.buffers.len(), 2);
    let lib = StdIpLib::new();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("x", 7).unwrap();
    sim.step("clka").unwrap();
    sim.step("clka").unwrap();
    sim.step("clkb").unwrap();
    let rec = SignalCat::reconstruct(&info, &sim);
    let a = rec.iter().filter(|r| r.message.starts_with("A ")).count();
    let b = rec.iter().filter(|r| r.message.starts_with("B ")).count();
    assert_eq!((a, b), (2, 1), "{rec:?}");
}

// ---------------------------------------------------------------------------
// Typed-diagnostic coverage: every tool misconfiguration maps to a specific
// HwdbgError code via `From<ToolError>`, and degraded runs are marked.
// ---------------------------------------------------------------------------

#[test]
fn losscheck_unknown_source_is_e0207() {
    let lib = StdIpLib::new();
    let d = design(COUNTER, "m");
    let g = PropGraph::build(&d, &lib).unwrap();
    let cfg = LossCheckConfig {
        source: "no_such_source".into(),
        sink: "n".into(),
        source_valid: "go".into(),
    };
    let err = LossCheck::instrument(&d, &g, &cfg).unwrap_err();
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg_diag::ErrorCode::UnknownSignal);
    assert_eq!(diag.code.as_str(), "E0207");
    assert_eq!(diag.signals, vec!["no_such_source".to_string()]);
}

#[test]
fn statmon_on_clockless_design_is_e0501() {
    let d = design(
        "module m(input a, input b, output w); assign w = a & b; endmodule",
        "m",
    );
    let events = vec![Event::new("ev", parse_expr("w").unwrap())];
    let err = StatisticsMonitor::instrument(&d, &events, None).unwrap_err();
    assert!(matches!(err, ToolError::NoClock));
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg_diag::ErrorCode::NoClock);
    assert_eq!(diag.code.as_str(), "E0501");
}

#[test]
fn signalcat_without_displays_is_e0502() {
    let d = design(
        "module m(input clk, output reg q); always @(posedge clk) q <= ~q; endmodule",
        "m",
    );
    let err = SignalCat::instrument(&d, &SignalCatConfig::default()).unwrap_err();
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg_diag::ErrorCode::NothingToInstrument);
    assert_eq!(diag.code.as_str(), "E0502");
}

#[test]
fn depmon_unknown_target_is_e0207() {
    use hwdbg_dataflow::DepKind;
    use hwdbg_tools::DependencyMonitor;
    let lib = StdIpLib::new();
    let d = design(COUNTER, "m");
    let g = PropGraph::build(&d, &lib).unwrap();
    let err =
        DependencyMonitor::analyze(&d, &g, "ghost", 2, &[DepKind::Data]).unwrap_err();
    let diag: hwdbg_diag::HwdbgError = err.into();
    assert_eq!(diag.code, hwdbg_diag::ErrorCode::UnknownSignal);
    assert_eq!(diag.signals, vec!["ghost".to_string()]);
}

#[test]
fn rendered_tool_diagnostic_names_the_signal() {
    let lib = StdIpLib::new();
    let d = design(COUNTER, "m");
    let g = PropGraph::build(&d, &lib).unwrap();
    let cfg = LossCheckConfig {
        source: "phantom".into(),
        sink: "n".into(),
        source_valid: "go".into(),
    };
    let diag: hwdbg_diag::HwdbgError =
        LossCheck::instrument(&d, &g, &cfg).unwrap_err().into();
    let rendered = diag.render(None);
    assert!(rendered.contains("E0207"), "{rendered}");
    assert!(rendered.contains("phantom"), "{rendered}");
}

#[test]
fn signalcat_wrap_is_marked_degraded() {
    let lib = StdIpLib::new();
    let d = design(COUNTER, "m");
    // Depth 4 with a free-running counter: the ring is guaranteed to wrap.
    let cfg = SignalCatConfig {
        buffer_depth: 4,
        ..Default::default()
    };
    let info = SignalCat::instrument(&d, &cfg).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("go", 1).unwrap();
    sim.run("clk", 40).unwrap();
    let checked = SignalCat::reconstruct_checked(&info, &sim);
    assert!(!checked.is_clean(), "a wrapped ring must be marked degraded");
    assert!(!checked.value.is_empty(), "degraded output is still output");
    let w = &checked.diags[0];
    assert_eq!(w.code, hwdbg_diag::ErrorCode::DegradedOutput);
    assert_eq!(w.severity, hwdbg_diag::Severity::Warning);
    assert!(w.message.contains("wrapped"), "{}", w.message);
}

#[test]
fn signalcat_unwrapped_run_is_clean() {
    let lib = StdIpLib::new();
    let d = design(COUNTER, "m");
    let info = SignalCat::instrument(&d, &SignalCatConfig::default()).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("go", 1).unwrap();
    sim.run("clk", 10).unwrap();
    let checked = SignalCat::reconstruct_checked(&info, &sim);
    assert!(checked.is_clean(), "{:?}", checked.diags);
}

#[test]
fn fsm_trace_marks_forced_unlabeled_state_degraded() {
    use hwdbg_tools::FsmMonitor;
    let lib = StdIpLib::new();
    // A two-state FSM with named states; force it into encoding 3, which
    // no localparam names.
    let src = r#"module m(input clk, input go);
        localparam IDLE = 2'd0;
        localparam BUSY = 2'd1;
        reg [1:0] state;
        always @(posedge clk) begin
            case (state)
                IDLE: if (go) state <= BUSY;
                BUSY: if (!go) state <= IDLE;
                default: state <= IDLE;
            endcase
        end
    endmodule"#;
    let d = design(src, "m");
    let info = FsmMonitor::new().instrument(&d).unwrap();
    let mut sim = sim_of(resolve(info.module.clone(), &lib).unwrap());
    sim.poke_u64("go", 1).unwrap();
    sim.step("clk").unwrap();
    sim.force("state", hwdbg_bits::Bits::from_u64(2, 3)).unwrap();
    sim.step("clk").unwrap();
    sim.release("state").unwrap();
    sim.step("clk").unwrap();
    let checked = FsmMonitor::trace_checked(&info, &sim);
    assert!(
        !checked.is_clean(),
        "entering an unlabeled state must be flagged: {:?}",
        checked.value
    );
    let w = &checked.diags[0];
    assert_eq!(w.code, hwdbg_diag::ErrorCode::DegradedOutput);
    assert!(w.message.contains("unlabeled state 3"), "{}", w.message);
    assert_eq!(w.signals, vec!["state".to_string()]);
}
