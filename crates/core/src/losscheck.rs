//! LossCheck: precise data-loss localization (§4.5).
//!
//! Given a `Source` register, a `Sink` register, and the Source's valid
//! signal, LossCheck statically finds every register on a data-propagation
//! path Source → Sink and instruments each register `R` with shadow state:
//!
//! * `A(R)` — R was assigned this cycle (OR of incoming relation
//!   conditions);
//! * `V(R)` — R was assigned a *valid* value (incoming condition AND the
//!   producing register currently holds source-derived valid data, tracked
//!   by an auxiliary holding register `H(R)`);
//! * `P(R)` — R's value propagated onward (OR of outgoing conditions);
//! * `N(R)` — "needs propagation", Eq. 1:
//!   `N_k = V_{k-1} ∨ (N_{k-1} ∧ ¬P_{k-1})`.
//!
//! Potential loss fires per Eq. 2: `A ∧ ¬P ∧ N` — a register carrying
//! unpropagated valid data got overwritten. Intentional drops are filtered
//! by running the design's passing test case first (§4.5.3): registers
//! that also fire there are suppressed, which reproduces both the paper's
//! D1 false positive and its D11 false negative.

use crate::{clock_map, generated_lines, ToolError};
use hwdbg_dataflow::{Design, DepKind, PropGraph, SigKind};
use hwdbg_rtl::{BinaryOp, Expr, Item, LValue, Module, NetDecl, NetKind, Span, Stmt, UnaryOp};
use hwdbg_sim::LogRecord;
use std::collections::BTreeSet;

/// LossCheck configuration: where data enters, where it must come out,
/// and which signal qualifies the source data as valid.
#[derive(Debug, Clone)]
pub struct LossCheckConfig {
    /// Source register/input (flat name).
    pub source: String,
    /// Sink register/output (flat name).
    pub sink: String,
    /// Valid signal accompanying the source (§2.3 valid interface).
    pub source_valid: String,
}

/// Result of LossCheck instrumentation.
#[derive(Debug, Clone)]
pub struct LossCheckInstrumented {
    /// The instrumented module.
    pub module: Module,
    /// Registers being checked for loss.
    pub tracked: Vec<String>,
    /// The full propagation sequence Source → Sink.
    pub sequence: Vec<String>,
    /// Lines of Verilog generated (paper: 522–19,462 for its designs).
    pub generated_lines: usize,
    /// The configuration used.
    pub config: LossCheckConfig,
}

/// The LossCheck tool.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossCheck;

impl LossCheck {
    /// Instruments `design` with loss-detection shadow logic for every
    /// register on a propagation path from the configured source to sink.
    ///
    /// # Errors
    ///
    /// * [`ToolError::UnknownSignal`] for unknown source/sink/valid names;
    /// * [`ToolError::NoPath`] when no data path connects source to sink;
    /// * [`ToolError::NothingToInstrument`] when the path contains no
    ///   intermediate register to check.
    pub fn instrument(
        design: &Design,
        graph: &PropGraph,
        cfg: &LossCheckConfig,
    ) -> Result<LossCheckInstrumented, ToolError> {
        for name in [&cfg.source, &cfg.sink, &cfg.source_valid] {
            if !design.signals.contains_key(name) {
                return Err(ToolError::UnknownSignal(name.clone()));
            }
        }
        let seq = graph.propagation_sequence(&cfg.source, &cfg.sink);
        if !seq.contains(&cfg.sink) || !seq.contains(&cfg.source) {
            return Err(ToolError::NoPath {
                source: cfg.source.clone(),
                sink: cfg.sink.clone(),
            });
        }
        // Track every state-holding element strictly between source and
        // sink (the endpoints themselves are where data is defined to
        // arrive/depart, not where it can be lost).
        let tracked: Vec<String> = seq
            .iter()
            .filter(|n| **n != cfg.source && **n != cfg.sink)
            .filter(|n| design.signals.get(*n).is_some_and(|s| s.is_state()))
            .cloned()
            .collect();
        if tracked.is_empty() {
            return Err(ToolError::NothingToInstrument(format!(
                "no intermediate registers between `{}` and `{}`",
                cfg.source, cfg.sink
            )));
        }

        let (clocks, primary) = clock_map(design);
        let mut module = design.flat.clone();
        let mut new_items: Vec<Item> = Vec::new();

        // Combinational validity wires for non-register members of the
        // sequence (wires forward validity in the same cycle).
        let comb_members: Vec<String> = seq
            .iter()
            .filter(|n| {
                design
                    .signals
                    .get(*n)
                    .is_some_and(|s| matches!(s.kind, SigKind::Comb | SigKind::Output))
                    && **n != cfg.source
                    && !tracked.contains(n)
            })
            .cloned()
            .collect();
        let validity_of = |src: &str| -> Option<Expr> {
            if src == cfg.source {
                Some(Expr::ident(cfg.source_valid.clone()))
            } else if tracked.contains(&src.to_owned()) {
                Some(Expr::ident(h_reg(src)))
            } else if comb_members.contains(&src.to_owned()) {
                Some(Expr::ident(h_wire(src)))
            } else {
                None // not derived from the source: invalid
            }
        };
        // Outputs of stateful blackbox IPs (FIFOs, RAMs) *hold* validity:
        // once source-derived valid data has entered the IP, its output is
        // treated as valid-carrying from then on (sticky), matching the
        // one-cycle-latency port relations of the IP models.
        let bb_driven: std::collections::BTreeSet<String> = design
            .blackboxes
            .iter()
            .flat_map(|b| b.out_conns.values())
            .flat_map(|lv| lv.target_names().into_iter().map(str::to_owned))
            .collect();
        for w in &comb_members {
            let terms = graph
                .incoming(w)
                .filter(|r| r.kind == DepKind::Data)
                .filter_map(|r| {
                    validity_of(graph.name(r.src)).map(|h| {
                        Expr::Binary(
                            BinaryOp::LogAnd,
                            Box::new(to_bool(r.cond.as_ref().clone(), design)),
                            Box::new(h),
                        )
                    })
                })
                .collect::<Vec<_>>();
            if bb_driven.contains(w) {
                let clock = primary.clone().ok_or(ToolError::NoClock)?;
                new_items.push(Item::Net(NetDecl::scalar(NetKind::Reg, h_wire(w))));
                new_items.push(Item::Always {
                    event: hwdbg_rtl::EventControl::Edges(vec![hwdbg_rtl::Edge {
                        posedge: true,
                        signal: clock,
                    }]),
                    body: Stmt::nonblocking(
                        LValue::Id(h_wire(w)),
                        Expr::or(Expr::any(terms), Expr::ident(h_wire(w))),
                    ),
                    span: Span::synthetic(),
                });
            } else {
                new_items.push(Item::Net(NetDecl::scalar(NetKind::Wire, h_wire(w))));
                new_items.push(Item::Assign {
                    lhs: LValue::Id(h_wire(w)),
                    rhs: Expr::any(terms),
                    span: Span::synthetic(),
                });
            }
        }

        // Memories are tracked with per-slot shadow bits (see
        // `instrument_memory`); plain registers with the scalar shadow
        // logic below.
        let (mem_tracked, reg_tracked): (Vec<String>, Vec<String>) = tracked
            .iter()
            .cloned()
            .partition(|n| design.signals.get(n).is_some_and(|s| s.mem_depth.is_some()));
        for m in &mem_tracked {
            let clock = clocks
                .get(m)
                .cloned()
                .or_else(|| primary.clone())
                .ok_or(ToolError::NoClock)?;
            instrument_memory(design, m, &clock, &validity_of, &mut new_items);
        }

        // Shadow logic per tracked register, mirroring the generated code
        // in §4.5.2 of the paper.
        for r in &reg_tracked {
            let clock = clocks
                .get(r)
                .cloned()
                .or_else(|| primary.clone())
                .ok_or(ToolError::NoClock)?;

            let a_now: Vec<Expr> = graph
                .incoming(r)
                .filter(|rel| rel.kind == DepKind::Data)
                .map(|rel| to_bool(rel.cond.as_ref().clone(), design))
                .collect();
            let v_now: Vec<Expr> = graph
                .incoming(r)
                .filter(|rel| rel.kind == DepKind::Data)
                .filter_map(|rel| {
                    validity_of(graph.name(rel.src)).map(|h| {
                        Expr::Binary(
                            BinaryOp::LogAnd,
                            Box::new(to_bool(rel.cond.as_ref().clone(), design)),
                            Box::new(h),
                        )
                    })
                })
                .collect();
            let p_now: Vec<Expr> = graph
                .outgoing(r)
                .filter(|rel| rel.kind == DepKind::Data)
                .map(|rel| to_bool(rel.cond.as_ref().clone(), design))
                .collect();

            for (name, expr) in [
                (aw(r), Expr::any(a_now)),
                (vw(r), Expr::any(v_now)),
                (pw(r), Expr::any(p_now)),
            ] {
                new_items.push(Item::Net(NetDecl::scalar(NetKind::Wire, name.clone())));
                new_items.push(Item::Assign {
                    lhs: LValue::Id(name),
                    rhs: expr,
                    span: Span::synthetic(),
                });
            }
            for name in [nr(r), h_reg(r)] {
                new_items.push(Item::Net(NetDecl::scalar(NetKind::Reg, name)));
            }

            // The paper's listing registers A/V/P before checking, which
            // delays the whole pipeline by a cycle and misses an overwrite
            // landing one cycle after the valid assignment. We evaluate
            // Eqs. 1–2 with the current-cycle status wires instead:
            //
            // always @(posedge clk) begin
            //   __lc_H_r <= __lc_a_r ? __lc_v_r : __lc_H_r;
            //   __lc_N_r <= __lc_v_r | (__lc_N_r & ~__lc_p_r);      // Eq. 1
            //   if (__lc_a_r & ~__lc_p_r & __lc_N_r)                // Eq. 2
            //     $display("LOSSCHECK r");
            // end
            let body = Stmt::Block(vec![
                Stmt::nonblocking(
                    LValue::Id(h_reg(r)),
                    Expr::Ternary(
                        Box::new(Expr::ident(aw(r))),
                        Box::new(Expr::ident(vw(r))),
                        Box::new(Expr::ident(h_reg(r))),
                    ),
                ),
                Stmt::nonblocking(
                    LValue::Id(nr(r)),
                    Expr::or(
                        Expr::ident(vw(r)),
                        Expr::and(Expr::ident(nr(r)), Expr::not(Expr::ident(pw(r)))),
                    ),
                ),
                Stmt::if_then(
                    Expr::and(
                        Expr::ident(aw(r)),
                        Expr::and(Expr::not(Expr::ident(pw(r))), Expr::ident(nr(r))),
                    ),
                    Stmt::Display {
                        format: format!("LOSSCHECK {r}"),
                        args: vec![],
                        span: Span::synthetic(),
                    },
                ),
            ]);
            new_items.push(Item::Always {
                event: hwdbg_rtl::EventControl::Edges(vec![hwdbg_rtl::Edge {
                    posedge: true,
                    signal: clock,
                }]),
                body,
                span: Span::synthetic(),
            });
        }

        let lines = generated_lines(&new_items);
        module.items.extend(new_items);
        Ok(LossCheckInstrumented {
            module,
            tracked,
            sequence: seq.into_iter().collect(),
            generated_lines: lines,
            config: cfg.clone(),
        })
    }

    /// Registers flagged as potential loss sites in a run's logs.
    pub fn reports(logs: &[LogRecord]) -> BTreeSet<String> {
        logs.iter()
            .filter_map(|l| l.message.strip_prefix("LOSSCHECK "))
            .map(|s| s.trim().to_owned())
            .collect()
    }

    /// Accumulates the number of shadow-state loss reports fired during a
    /// run into the observability registry. Unlike [`LossCheck::reports`]
    /// this counts every firing, not the deduplicated register set.
    pub fn observe(logs: &[LogRecord], counters: &mut hwdbg_obs::SimCounters) {
        counters.shadow_updates += logs
            .iter()
            .filter(|l| l.message.starts_with("LOSSCHECK "))
            .count() as u64;
    }

    /// Ground-truth filtering (§4.5.3): suppress registers that also fire
    /// on the design's passing test case — those are intentional drops.
    pub fn filter(
        buggy_reports: &BTreeSet<String>,
        ground_truth_reports: &BTreeSet<String>,
    ) -> BTreeSet<String> {
        buggy_reports
            .difference(ground_truth_reports)
            .cloned()
            .collect()
    }
}

/// Per-memory LossCheck instrumentation. A memory gets a
/// needs-propagation bit per slot plus an explicit bounds check, the
/// AddressSanitizer-style analogue the paper's §7 cites as inspiration:
///
/// * a write whose raw index is `>= depth` is a buffer overflow — the data
///   is dropped (non-power-of-two memories) or lands on a wrong slot
///   (power-of-two truncation), both §3.2.1 outcomes — and is reported;
/// * a write landing on a slot whose shadow bit says "holds unread valid
///   data" is an overwrite loss (Eq. 2 at slot granularity);
/// * reads clear the slot's shadow bit (propagation).
fn instrument_memory(
    design: &Design,
    mem: &str,
    clock: &str,
    validity_of: &dyn Fn(&str) -> Option<Expr>,
    new_items: &mut Vec<Item>,
) {
    let Some(sig) = design.signals.get(mem) else {
        return;
    };
    let Some(depth) = sig.mem_depth else { return };
    let addr_bits = hwdbg_dataflow::clog2(depth);
    let mask = Expr::sized(addr_bits.max(1), (1u64 << addr_bits.min(63)) - 1);
    let ports = scan_memory_ports(design, mem);

    let nvec = format!("__lc_Nv_{mem}");
    new_items.push(Item::Net(NetDecl::vector(
        NetKind::Reg,
        nvec.clone(),
        depth as u32,
    )));
    new_items.push(Item::Net(NetDecl::scalar(NetKind::Reg, h_reg(mem))));

    let masked = |idx: &Expr| Expr::and(idx.clone(), mask.clone());
    let mut stmts: Vec<Stmt> = Vec::new();
    for (cond, idx) in &ports.reads {
        stmts.push(Stmt::if_then(
            to_bool(cond.clone(), design),
            Stmt::nonblocking(
                LValue::Index(nvec.clone(), masked(idx)),
                Expr::sized(1, 0),
            ),
        ));
    }
    for w in &ports.writes {
        let wvalid = {
            let terms: Vec<Expr> = w
                .srcs
                .iter()
                .filter_map(|s| validity_of(s))
                .collect();
            Expr::any(terms)
        };
        let body = Stmt::Block(vec![
            Stmt::If {
                cond: Expr::Binary(
                    BinaryOp::Ge,
                    Box::new(w.idx.clone()),
                    Box::new(Expr::number(depth)),
                ),
                then: Box::new(Stmt::Display {
                    // Out-of-range writes are tagged so ground-truth
                    // filtering can distinguish a genuine overflow from a
                    // legitimate slot update at the same memory.
                    format: format!("LOSSCHECK {mem}!oob"),
                    args: vec![],
                    span: Span::synthetic(),
                }),
                els: Some(Box::new(Stmt::if_then(
                    Expr::and(
                        Expr::Index(nvec.clone(), Box::new(masked(&w.idx))),
                        wvalid.clone(),
                    ),
                    Stmt::Display {
                        format: format!("LOSSCHECK {mem}"),
                        args: vec![],
                        span: Span::synthetic(),
                    },
                ))),
            },
            Stmt::nonblocking(LValue::Index(nvec.clone(), masked(&w.idx)), wvalid.clone()),
            Stmt::nonblocking(
                LValue::Id(h_reg(mem)),
                Expr::Ternary(
                    Box::new(wvalid),
                    Box::new(Expr::sized(1, 1)),
                    Box::new(Expr::ident(h_reg(mem))),
                ),
            ),
        ]);
        stmts.push(Stmt::if_then(to_bool(w.cond.clone(), design), body));
    }
    new_items.push(Item::Always {
        event: hwdbg_rtl::EventControl::Edges(vec![hwdbg_rtl::Edge {
            posedge: true,
            signal: clock.to_owned(),
        }]),
        body: Stmt::Block(stmts),
        span: Span::synthetic(),
    });
}

/// A memory write port discovered in the AST.
struct MemWrite {
    cond: Expr,
    idx: Expr,
    srcs: Vec<String>,
}

/// Read/write ports of a memory, with their path conditions.
struct MemPorts {
    writes: Vec<MemWrite>,
    reads: Vec<(Expr, Expr)>,
}

/// Scans the design for writes `mem[idx] <= rhs` and reads `mem[idx]`.
fn scan_memory_ports(design: &Design, mem: &str) -> MemPorts {
    let mut ports = MemPorts {
        writes: Vec::new(),
        reads: Vec::new(),
    };
    for p in &design.procs {
        scan_stmt_ports(&p.body, &mut vec![], mem, &mut ports);
    }
    // Combinational reads (e.g. `assign head = mem[rd_ptr];`) observe a
    // slot continuously without consuming it; treating them as propagation
    // would clear the needs-propagation bit every cycle and mask real
    // overwrites, so only clocked reads count as consumption.
    ports
}

fn conj(conds: &[Expr]) -> Expr {
    let mut it = conds.iter().cloned();
    match it.next() {
        None => Expr::sized(1, 1),
        Some(first) => it.fold(first, |acc, c| {
            Expr::Binary(BinaryOp::LogAnd, Box::new(acc), Box::new(c))
        }),
    }
}

fn scan_stmt_ports(stmt: &Stmt, conds: &mut Vec<Expr>, mem: &str, ports: &mut MemPorts) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                scan_stmt_ports(s, conds, mem, ports);
            }
        }
        Stmt::If { cond, then, els } => {
            scan_expr_reads(cond, conds, mem, ports);
            conds.push(cond.clone());
            scan_stmt_ports(then, conds, mem, ports);
            conds.pop();
            if let Some(e) = els {
                conds.push(Expr::Unary(UnaryOp::LogNot, Box::new(cond.clone())));
                scan_stmt_ports(e, conds, mem, ports);
                conds.pop();
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            scan_expr_reads(expr, conds, mem, ports);
            let mut not_prior: Vec<Expr> = Vec::new();
            for arm in arms {
                let arm_cond = Expr::any(
                    arm.labels
                        .iter()
                        .map(|l| Expr::eq(expr.clone(), l.clone())),
                );
                let n = not_prior.len() + 1;
                conds.extend(not_prior.iter().cloned());
                conds.push(arm_cond.clone());
                scan_stmt_ports(&arm.body, conds, mem, ports);
                conds.truncate(conds.len() - n);
                not_prior.push(Expr::Unary(UnaryOp::LogNot, Box::new(arm_cond)));
            }
            if let Some(d) = default {
                let n = not_prior.len();
                conds.extend(not_prior.iter().cloned());
                scan_stmt_ports(d, conds, mem, ports);
                conds.truncate(conds.len() - n);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            scan_expr_reads(rhs, conds, mem, ports);
            if let LValue::Index(name, idx) = lhs {
                if name == mem {
                    ports.writes.push(MemWrite {
                        cond: conj(conds),
                        idx: idx.clone(),
                        srcs: rhs.idents().into_iter().map(|s| s.to_owned()).collect(),
                    });
                }
            }
        }
        Stmt::For { body, .. } => scan_stmt_ports(body, conds, mem, ports),
        Stmt::Display { args, .. } => {
            for a in args {
                scan_expr_reads(a, conds, mem, ports);
            }
        }
        Stmt::Finish | Stmt::Empty => {}
    }
}

fn scan_expr_reads(e: &Expr, conds: &[Expr], mem: &str, ports: &mut MemPorts) {
    match e {
        Expr::Index(name, idx) if name == mem => {
            ports.reads.push((conj(conds), (**idx).clone()));
            scan_expr_reads(idx, conds, mem, ports);
        }
        Expr::Index(_, idx) => scan_expr_reads(idx, conds, mem, ports),
        Expr::Unary(_, i) | Expr::WidthCast(_, i) | Expr::SignCast(_, i) => {
            scan_expr_reads(i, conds, mem, ports)
        }
        Expr::Binary(_, a, b) | Expr::Repeat(a, b) => {
            scan_expr_reads(a, conds, mem, ports);
            scan_expr_reads(b, conds, mem, ports);
        }
        Expr::Ternary(c, t, f) => {
            scan_expr_reads(c, conds, mem, ports);
            scan_expr_reads(t, conds, mem, ports);
            scan_expr_reads(f, conds, mem, ports);
        }
        Expr::Range(_, a, b) => {
            scan_expr_reads(a, conds, mem, ports);
            scan_expr_reads(b, conds, mem, ports);
        }
        Expr::Concat(parts) => {
            for p in parts {
                scan_expr_reads(p, conds, mem, ports);
            }
        }
        Expr::Literal { .. } | Expr::Ident(_) => {}
    }
}

fn aw(r: &str) -> String {
    format!("__lc_a_{r}")
}
fn vw(r: &str) -> String {
    format!("__lc_v_{r}")
}
fn pw(r: &str) -> String {
    format!("__lc_p_{r}")
}
fn nr(r: &str) -> String {
    format!("__lc_N_{r}")
}
fn h_reg(r: &str) -> String {
    format!("__lc_H_{r}")
}
fn h_wire(r: &str) -> String {
    format!("__lc_hw_{r}")
}

fn to_bool(e: Expr, design: &Design) -> Expr {
    match design.expr_width(&e) {
        Some(1) => e,
        _ => Expr::Unary(UnaryOp::RedOr, Box::new(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_sim::{NoModels, SimConfig, Simulator};

    /// The paper's running example (§4.5.1): b's value can be lost when
    /// cond_a shadows cond_b.
    const PAPER_SRC: &str = "module m(input clk, input cond_a, input cond_b,
                input [7:0] a, input [7:0] in, input in_valid,
                output reg [7:0] out);
        reg [7:0] b;
        always @(posedge clk) begin
            if (cond_a) out <= a;
            else if (cond_b) out <= b;
            if (in_valid) b <= in;
        end
    endmodule";

    fn setup(src: &str) -> (Design, PropGraph) {
        let d = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
        let g = PropGraph::build(&d, &NoBlackboxes).unwrap();
        (d, g)
    }

    fn instrumented_sim(info: &LossCheckInstrumented) -> Simulator {
        let d = hwdbg_dataflow::resolve(info.module.clone(), &NoBlackboxes).unwrap();
        Simulator::new(d, &NoModels, SimConfig::default()).unwrap()
    }

    fn cfg() -> LossCheckConfig {
        LossCheckConfig {
            source: "in".into(),
            sink: "out".into(),
            source_valid: "in_valid".into(),
        }
    }

    #[test]
    fn tracks_the_intermediate_register() {
        let (d, g) = setup(PAPER_SRC);
        let info = LossCheck::instrument(&d, &g, &cfg()).unwrap();
        assert_eq!(info.tracked, vec!["b".to_string()]);
        assert!(info.generated_lines >= 12, "{}", info.generated_lines);
    }

    #[test]
    fn detects_loss_when_b_is_overwritten_unread() {
        let (d, g) = setup(PAPER_SRC);
        let info = LossCheck::instrument(&d, &g, &cfg()).unwrap();
        let mut sim = instrumented_sim(&info);
        // Valid data enters b, cond_a keeps shadowing cond_b, then b is
        // overwritten: loss.
        sim.poke_u64("in_valid", 1).unwrap();
        sim.poke_u64("in", 11).unwrap();
        sim.poke_u64("cond_a", 1).unwrap();
        sim.step("clk").unwrap();
        sim.poke_u64("in", 22).unwrap(); // overwrites b while N is set
        for _ in 0..4 {
            sim.step("clk").unwrap();
        }
        let reports = LossCheck::reports(sim.logs());
        assert!(reports.contains("b"), "{:?}", sim.logs());
    }

    #[test]
    fn no_loss_when_data_is_consumed() {
        let (d, g) = setup(PAPER_SRC);
        let info = LossCheck::instrument(&d, &g, &cfg()).unwrap();
        let mut sim = instrumented_sim(&info);
        // One valid datum enters b, then cond_b forwards it to out before
        // anything overwrites b: no loss.
        sim.poke_u64("in_valid", 1).unwrap();
        sim.poke_u64("in", 11).unwrap();
        sim.step("clk").unwrap();
        sim.poke_u64("in_valid", 0).unwrap();
        sim.poke_u64("cond_b", 1).unwrap();
        sim.step("clk").unwrap();
        sim.poke_u64("cond_b", 0).unwrap();
        sim.poke_u64("in_valid", 1).unwrap();
        sim.poke_u64("in", 33).unwrap();
        sim.step("clk").unwrap();
        sim.poke_u64("in_valid", 0).unwrap();
        for _ in 0..4 {
            sim.step("clk").unwrap();
        }
        assert_eq!(sim.peek("out").unwrap().to_u64(), 11);
        let reports = LossCheck::reports(sim.logs());
        assert!(reports.is_empty(), "{:?}", sim.logs());
    }

    #[test]
    fn filtering_suppresses_intentional_drops() {
        let mut buggy = BTreeSet::new();
        buggy.insert("real_loss".to_string());
        buggy.insert("checksum_drop".to_string());
        let mut ground = BTreeSet::new();
        ground.insert("checksum_drop".to_string());
        let filtered = LossCheck::filter(&buggy, &ground);
        assert_eq!(filtered.len(), 1);
        assert!(filtered.contains("real_loss"));
    }

    #[test]
    fn rejects_unknown_and_disconnected() {
        let (d, g) = setup(PAPER_SRC);
        let bad = LossCheckConfig {
            source: "ghost".into(),
            ..cfg()
        };
        assert!(matches!(
            LossCheck::instrument(&d, &g, &bad),
            Err(ToolError::UnknownSignal(_))
        ));
        let no_path = LossCheckConfig {
            source: "out".into(),
            sink: "in".into(),
            source_valid: "in_valid".into(),
        };
        assert!(matches!(
            LossCheck::instrument(&d, &g, &no_path),
            Err(ToolError::NoPath { .. }) | Err(ToolError::NothingToInstrument(_))
        ));
    }

    #[test]
    fn memory_overflow_write_is_reported() {
        // A ring buffer whose pointer wraps at 16 instead of 12: writes at
        // 12..15 overflow the non-power-of-two memory (paper §3.2.1).
        let src = "module m(input clk, input [7:0] in, input in_valid,
                            input rd_en, input [3:0] rd_ptr, output reg [7:0] out);
            reg [7:0] buf0 [0:11];
            reg [3:0] wr_ptr;
            always @(posedge clk) begin
                if (in_valid) begin
                    buf0[wr_ptr] <= in;
                    wr_ptr <= wr_ptr + 4'd1;
                end
                if (rd_en) out <= buf0[rd_ptr];
            end
        endmodule";
        let (d, g) = setup(src);
        let info = LossCheck::instrument(&d, &g, &cfg()).unwrap();
        assert!(info.tracked.contains(&"buf0".to_string()));
        let mut sim = instrumented_sim(&info);
        sim.poke_u64("in_valid", 1).unwrap();
        for i in 0..12 {
            sim.poke_u64("in", i).unwrap();
            // Drain as we go so no overwrite loss occurs in range.
            sim.poke_u64("rd_en", 1).unwrap();
            sim.poke_u64("rd_ptr", i).unwrap();
            sim.step("clk").unwrap();
        }
        assert!(
            LossCheck::reports(sim.logs()).is_empty(),
            "in-range writes must not fire: {:?}",
            sim.logs()
        );
        // The 13th write goes to index 12: overflow (tagged `!oob`).
        sim.poke_u64("in", 99).unwrap();
        sim.step("clk").unwrap();
        assert!(LossCheck::reports(sim.logs()).contains("buf0!oob"));
    }

    #[test]
    fn memory_overwrite_of_unread_slot_is_reported() {
        let src = "module m(input clk, input [7:0] in, input in_valid,
                            input [1:0] wa, input rd_en, input [1:0] rd_ptr,
                            output reg [7:0] out);
            reg [7:0] buf0 [0:3];
            always @(posedge clk) begin
                if (in_valid) buf0[wa] <= in;
                if (rd_en) out <= buf0[rd_ptr];
            end
        endmodule";
        let (d, g) = setup(src);
        let info = LossCheck::instrument(&d, &g, &cfg()).unwrap();
        let mut sim = instrumented_sim(&info);
        // Write slot 2 with valid data, never read it, write slot 2 again.
        sim.poke_u64("in_valid", 1).unwrap();
        sim.poke_u64("wa", 2).unwrap();
        sim.poke_u64("in", 7).unwrap();
        sim.step("clk").unwrap();
        assert!(LossCheck::reports(sim.logs()).is_empty());
        sim.poke_u64("in", 8).unwrap();
        sim.step("clk").unwrap();
        assert!(LossCheck::reports(sim.logs()).contains("buf0"));
    }

    #[test]
    fn validity_flows_through_comb_wires() {
        let src = "module m(input clk, input [7:0] in, input in_valid,
                            input take, input use_it, output reg [7:0] out);
            reg [7:0] b;
            wire [7:0] shaped;
            assign shaped = in + 8'd1;
            always @(posedge clk) begin
                if (take) b <= shaped;
                if (use_it) out <= b;
            end
        endmodule";
        let (d, g) = setup(src);
        let info = LossCheck::instrument(&d, &g, &cfg()).unwrap();
        let mut sim = instrumented_sim(&info);
        // Valid datum lands in b through the comb wire; overwrite it
        // before use_it: loss at b.
        sim.poke_u64("in_valid", 1).unwrap();
        sim.poke_u64("take", 1).unwrap();
        sim.poke_u64("in", 5).unwrap();
        sim.step("clk").unwrap();
        sim.poke_u64("in", 6).unwrap();
        for _ in 0..4 {
            sim.step("clk").unwrap();
        }
        assert!(LossCheck::reports(sim.logs()).contains("b"));
    }
}
