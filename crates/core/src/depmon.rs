//! Dependency Monitor: provenance tracking for a variable (§4.3).
//!
//! Given a variable `v` and a window of `k` cycles, the static half walks
//! the propagation-relation table backwards to find every register that can
//! influence `v` within `k` cycles (combinational hops are free, clocked
//! hops cost one cycle, and blackbox IPs are traversed through their IP
//! models). The dynamic half logs every update to each register in the
//! chain so a developer can trace an incorrect output back to its origin.

use crate::{clock_map, generated_lines, ToolError};
use hwdbg_dataflow::{Design, DepKind, PropGraph};
use hwdbg_rtl::{Expr, Item, LValue, Module, NetDecl, NetKind, Span, Stmt};
use hwdbg_sim::{LogRecord, Simulator};
use std::collections::BTreeMap;

/// The dependency chain of a variable.
#[derive(Debug, Clone)]
pub struct DepChain {
    /// The variable under investigation.
    pub target: String,
    /// Cycle window used.
    pub k: u32,
    /// Every signal that can influence the target within `k` cycles,
    /// mapped to its minimum cycle distance.
    pub deps: BTreeMap<String, u32>,
}

impl DepChain {
    /// The clocked registers in the chain (the ones worth logging).
    pub fn registers<'d>(&self, design: &'d Design) -> Vec<&'d hwdbg_dataflow::SigInfo> {
        self.deps
            .keys()
            .filter_map(|n| design.signals.get(n))
            .filter(|s| s.is_state() && s.mem_depth.is_none())
            .collect()
    }
}

/// One observed register update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepUpdate {
    /// Register name.
    pub signal: String,
    /// Cycle at which the new value became visible.
    pub cycle: u64,
    /// New value (decimal).
    pub value: u64,
}

/// Result of Dependency Monitor instrumentation.
#[derive(Debug, Clone)]
pub struct DepInstrumented {
    /// The instrumented module.
    pub module: Module,
    /// The analyzed chain.
    pub chain: DepChain,
    /// Registers actually instrumented.
    pub monitored: Vec<String>,
    /// Lines of Verilog generated.
    pub generated_lines: usize,
}

/// One partial (bit-range) assignment to a variable — §4.3's
/// "logically splitting a partially assigned variable".
#[derive(Debug, Clone)]
pub struct PartialAssign {
    /// Low bit of the assigned range.
    pub lo: u32,
    /// High bit of the assigned range.
    pub hi: u32,
    /// Signals whose values feed this range.
    pub srcs: Vec<String>,
    /// Path condition of the assignment.
    pub cond: Expr,
}

/// The Dependency Monitor tool.
#[derive(Debug, Clone, Copy, Default)]
pub struct DependencyMonitor;

impl DependencyMonitor {
    /// Computes the dependency chain of `target` within `k` cycles.
    /// `kinds` selects data and/or control dependencies (the paper's
    /// default analyzes both).
    ///
    /// # Errors
    ///
    /// [`ToolError::UnknownSignal`] if `target` does not exist.
    pub fn analyze(
        design: &Design,
        graph: &PropGraph,
        target: &str,
        k: u32,
        kinds: &[DepKind],
    ) -> Result<DepChain, ToolError> {
        if !design.signals.contains_key(target) {
            return Err(ToolError::UnknownSignal(target.to_owned()));
        }
        Ok(DepChain {
            target: target.to_owned(),
            k,
            deps: graph.back_slice(target, k, kinds),
        })
    }

    /// Instruments the design to log every update to the chain's
    /// registers (memories are tracked at whole-array granularity by the
    /// underlying analysis but not logged, matching §4.3's special-cased
    /// variable-indexed arrays).
    ///
    /// # Errors
    ///
    /// [`ToolError::NothingToInstrument`] when the chain has no registers.
    pub fn instrument(design: &Design, chain: &DepChain) -> Result<DepInstrumented, ToolError> {
        let regs = chain.registers(design);
        if regs.is_empty() {
            return Err(ToolError::NothingToInstrument(format!(
                "no registers within {} cycles of `{}`",
                chain.k, chain.target
            )));
        }
        let (clocks, primary) = clock_map(design);
        let mut module = design.flat.clone();
        let mut new_items = Vec::new();
        let mut monitored = Vec::new();
        for sig in regs {
            let clock = clocks
                .get(&sig.name)
                .cloned()
                .or_else(|| primary.clone())
                .ok_or(ToolError::NoClock)?;
            let prev = format!("__depmon_prev_{}", sig.name);
            new_items.push(Item::Net(NetDecl::vector(
                NetKind::Reg,
                prev.clone(),
                sig.width,
            )));
            let body = Stmt::Block(vec![
                Stmt::nonblocking(LValue::Id(prev.clone()), Expr::ident(sig.name.clone())),
                Stmt::if_then(
                    Expr::Binary(
                        hwdbg_rtl::BinaryOp::Ne,
                        Box::new(Expr::ident(prev.clone())),
                        Box::new(Expr::ident(sig.name.clone())),
                    ),
                    Stmt::Display {
                        format: format!("DEPMON {} %0d", sig.name),
                        args: vec![Expr::ident(sig.name.clone())],
                        span: Span::synthetic(),
                    },
                ),
            ]);
            new_items.push(Item::Always {
                event: hwdbg_rtl::EventControl::Edges(vec![hwdbg_rtl::Edge {
                    posedge: true,
                    signal: clock,
                }]),
                body,
                span: Span::synthetic(),
            });
            monitored.push(sig.name.clone());
        }
        let lines = generated_lines(&new_items);
        module.items.extend(new_items);
        Ok(DepInstrumented {
            module,
            chain: chain.clone(),
            monitored,
            generated_lines: lines,
        })
    }

    /// Splits a partially assigned variable into its per-range
    /// provenance (§4.3): every `signal[hi:lo] <= rhs` in the design,
    /// with the bit range, the contributing source signals, and the path
    /// condition. An empty result means the variable is only ever
    /// assigned whole.
    ///
    /// Byte-level provenance is what surfaces layout bugs: for the
    /// endianness mismatch of §3.2.4, the low byte of the response is
    /// sourced from the *high* byte of the shift register.
    pub fn partial_assignments(design: &Design, signal: &str) -> Vec<PartialAssign> {
        let mut out = Vec::new();
        for p in &design.procs {
            scan_partials(&p.body, &mut Vec::new(), signal, design, &mut out);
        }
        for c in &design.combs {
            scan_partials(&c.body, &mut Vec::new(), signal, design, &mut out);
        }
        out.sort_by_key(|pa| pa.lo);
        out
    }

    /// Parses the update trace out of captured logs.
    pub fn reconstruct(logs: &[LogRecord]) -> Vec<DepUpdate> {
        let mut out = Vec::new();
        for rec in logs {
            let Some(rest) = rec.message.strip_prefix("DEPMON ") else {
                continue;
            };
            let mut parts = rest.split_whitespace();
            let (Some(sig), Some(val)) = (parts.next(), parts.next()) else {
                continue;
            };
            let Ok(value) = val.parse::<u64>() else {
                continue;
            };
            out.push(DepUpdate {
                signal: sig.to_owned(),
                cycle: rec.cycle,
                value,
            });
        }
        out
    }

    /// Convenience: reconstruct directly from a simulator.
    pub fn trace(sim: &Simulator) -> Vec<DepUpdate> {
        Self::reconstruct(sim.logs())
    }

    /// Accumulates the number of observed dependency-chain updates into
    /// the observability registry.
    pub fn observe(sim: &Simulator, counters: &mut hwdbg_obs::SimCounters) {
        counters.dep_updates += Self::trace(sim).len() as u64;
    }
}

fn conj(conds: &[Expr]) -> Expr {
    let mut it = conds.iter().cloned();
    match it.next() {
        None => Expr::sized(1, 1),
        Some(first) => it.fold(first, |acc, c| {
            Expr::Binary(
                hwdbg_rtl::BinaryOp::LogAnd,
                Box::new(acc),
                Box::new(c),
            )
        }),
    }
}

fn scan_partials(
    stmt: &Stmt,
    conds: &mut Vec<Expr>,
    signal: &str,
    design: &Design,
    out: &mut Vec<PartialAssign>,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                scan_partials(s, conds, signal, design, out);
            }
        }
        Stmt::If { cond, then, els } => {
            conds.push(cond.clone());
            scan_partials(then, conds, signal, design, out);
            conds.pop();
            if let Some(e) = els {
                conds.push(Expr::Unary(
                    hwdbg_rtl::UnaryOp::LogNot,
                    Box::new(cond.clone()),
                ));
                scan_partials(e, conds, signal, design, out);
                conds.pop();
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            for arm in arms {
                let arm_cond = Expr::any(
                    arm.labels
                        .iter()
                        .map(|l| Expr::eq(expr.clone(), l.clone())),
                );
                conds.push(arm_cond);
                scan_partials(&arm.body, conds, signal, design, out);
                conds.pop();
            }
            if let Some(d) = default {
                scan_partials(d, conds, signal, design, out);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            if let LValue::Range(name, msb, lsb) = lhs {
                if name == signal {
                    let m = hwdbg_dataflow::eval_const(msb, &design.consts)
                        .map(|b| b.to_u64() as u32);
                    let l = hwdbg_dataflow::eval_const(lsb, &design.consts)
                        .map(|b| b.to_u64() as u32);
                    if let (Ok(hi), Ok(lo)) = (m, l) {
                        out.push(PartialAssign {
                            lo,
                            hi,
                            srcs: rhs.idents().into_iter().map(str::to_owned).collect(),
                            cond: conj(conds),
                        });
                    }
                }
            }
        }
        Stmt::For { body, .. } => scan_partials(body, conds, signal, design, out),
        Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_sim::{NoModels, SimConfig};

    const SRC: &str = "module m(input clk, input [7:0] d, input en, output reg [7:0] out);
        reg [7:0] stage1;
        reg [7:0] stage2;
        reg [7:0] unrelated;
        wire [7:0] bump;
        assign bump = stage1 + 8'd1;
        always @(posedge clk) begin
            if (en) stage1 <= d;
            stage2 <= bump;
            out <= stage2;
            unrelated <= unrelated + 8'd1;
        end
    endmodule";

    fn setup() -> (Design, PropGraph) {
        let d = elaborate(&hwdbg_rtl::parse(SRC).unwrap(), "m", &NoBlackboxes).unwrap();
        let g = PropGraph::build(&d, &NoBlackboxes).unwrap();
        (d, g)
    }

    #[test]
    fn chain_respects_cycle_window() {
        let (d, g) = setup();
        let chain2 =
            DependencyMonitor::analyze(&d, &g, "out", 2, &[DepKind::Data]).unwrap();
        assert!(chain2.deps.contains_key("stage1"));
        assert!(!chain2.deps.contains_key("d"), "{:?}", chain2.deps);
        let chain3 =
            DependencyMonitor::analyze(&d, &g, "out", 3, &[DepKind::Data]).unwrap();
        assert!(chain3.deps.contains_key("d"));
        assert!(!chain3.deps.contains_key("unrelated"));
    }

    #[test]
    fn control_deps_included_when_asked() {
        let (d, g) = setup();
        let data_only =
            DependencyMonitor::analyze(&d, &g, "out", 3, &[DepKind::Data]).unwrap();
        assert!(!data_only.deps.contains_key("en"));
        let both = DependencyMonitor::analyze(
            &d,
            &g,
            "out",
            3,
            &[DepKind::Data, DepKind::Control],
        )
        .unwrap();
        assert!(both.deps.contains_key("en"));
    }

    #[test]
    fn instrument_logs_chain_updates_only() {
        let (d, g) = setup();
        let chain =
            DependencyMonitor::analyze(&d, &g, "out", 3, &[DepKind::Data]).unwrap();
        let info = DependencyMonitor::instrument(&d, &chain).unwrap();
        assert!(info.monitored.contains(&"stage1".to_string()));
        assert!(!info.monitored.contains(&"unrelated".to_string()));
        let d2 = hwdbg_dataflow::resolve(info.module.clone(), &NoBlackboxes).unwrap();
        let mut sim = hwdbg_sim::Simulator::new(d2, &NoModels, SimConfig::default()).unwrap();
        sim.poke_u64("en", 1).unwrap();
        sim.poke_u64("d", 9).unwrap();
        sim.run("clk", 5).unwrap();
        let updates = DependencyMonitor::trace(&sim);
        assert!(updates.iter().any(|u| u.signal == "stage1" && u.value == 9));
        assert!(updates.iter().any(|u| u.signal == "out" && u.value == 10));
        assert!(!updates.iter().any(|u| u.signal == "unrelated"));
    }

    #[test]
    fn unknown_target_rejected() {
        let (d, g) = setup();
        assert!(matches!(
            DependencyMonitor::analyze(&d, &g, "ghost", 2, &[DepKind::Data]),
            Err(ToolError::UnknownSignal(_))
        ));
    }
}
