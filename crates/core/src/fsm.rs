//! FSM Monitor: static detection and runtime tracing of finite state
//! machines (§4.2).
//!
//! Detection uses the paper's heuristics: an FSM variable is a clocked
//! register that (1) is only ever assigned constant values (literals or
//! localparams), (2) is assigned conditionally, (3) appears in the
//! conditions steering those assignments (typically as a case selector),
//! (4) never has arithmetic applied to it, and (5) is never bit-selected.
//! Heuristics can miss FSMs (e.g. counter-encoded states) and the paper
//! reports 0 false positives / 5 false negatives over 32 FSMs; the
//! [`FsmMonitor`] API lets a developer patch either mistake by adding or
//! removing signals.

use crate::{clock_map, generated_lines, ToolError};
use hwdbg_bits::Bits;
use hwdbg_dataflow::{Design, SigKind};
use hwdbg_rtl::{Expr, Item, LValue, Module, NetDecl, NetKind, Span, Stmt};
use hwdbg_sim::{LogRecord, Simulator};
use std::collections::{BTreeMap, BTreeSet};

/// A detected finite state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmInfo {
    /// The state register's flat name.
    pub signal: String,
    /// Register width.
    pub width: u32,
    /// Known state encodings → recovered names (from localparams).
    pub states: BTreeMap<u64, String>,
}

impl FsmInfo {
    /// Human-readable name of a state value.
    pub fn state_name(&self, value: u64) -> String {
        self.states
            .get(&value)
            .cloned()
            .unwrap_or_else(|| format!("{value}"))
    }
}

/// One observed state transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmTransition {
    /// State register name.
    pub signal: String,
    /// Cycle at which the new state became visible.
    pub cycle: u64,
    /// Previous state value.
    pub from: u64,
    /// New state value.
    pub to: u64,
    /// Previous state name (localparam if recovered).
    pub from_name: String,
    /// New state name.
    pub to_name: String,
}

/// Result of FSM instrumentation.
#[derive(Debug, Clone)]
pub struct FsmInstrumented {
    /// The instrumented module.
    pub module: Module,
    /// The monitored FSMs.
    pub fsms: Vec<FsmInfo>,
    /// Lines of Verilog generated.
    pub generated_lines: usize,
}

/// Strictness knobs for the §4.2 detection heuristics.
///
/// The defaults reproduce the paper's operating point (0 false positives,
/// a handful of false negatives on encodings like one-hot rings). Relaxing
/// a rule widens recall at the cost of precision — the classic tradeoff
/// the paper notes vendor synthesizers resolve with more sophisticated
/// detection.
#[derive(Debug, Clone)]
pub struct FsmDetectConfig {
    /// Rule 1: every assignment must be a constant (or a self-hold).
    pub require_constant_assignments: bool,
    /// Rule 4: arithmetic on the variable disqualifies it (counters).
    pub reject_arithmetic: bool,
    /// Rule 5: bit selects of the variable disqualify it (one-hot rings
    /// slip through when this is relaxed — along with shift registers).
    pub reject_bit_select: bool,
    /// Minimum register width (1-bit flags are rarely FSMs of interest).
    pub min_width: u32,
}

impl Default for FsmDetectConfig {
    fn default() -> Self {
        FsmDetectConfig {
            require_constant_assignments: true,
            reject_arithmetic: true,
            reject_bit_select: true,
            min_width: 2,
        }
    }
}

/// The FSM Monitor tool.
#[derive(Debug, Clone, Default)]
pub struct FsmMonitor {
    extra: BTreeSet<String>,
    filtered: BTreeSet<String>,
}

impl FsmMonitor {
    /// Creates a monitor with no manual patches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state register the heuristics missed (developer patch).
    pub fn add_signal(&mut self, name: impl Into<String>) -> &mut Self {
        self.extra.insert(name.into());
        self
    }

    /// Filters out a detected register that is not an FSM of interest.
    pub fn filter_signal(&mut self, name: impl Into<String>) -> &mut Self {
        self.filtered.insert(name.into());
        self
    }

    /// Runs the static detection heuristics with the default strictness.
    pub fn detect(design: &Design) -> Vec<FsmInfo> {
        Self::detect_with_config(design, &FsmDetectConfig::default())
    }

    /// Runs detection with explicit heuristic strictness — the ablation
    /// knob of DESIGN.md §6: relaxing a rule trades false negatives for
    /// false positives.
    pub fn detect_with_config(design: &Design, cfg: &FsmDetectConfig) -> Vec<FsmInfo> {
        let mut facts: BTreeMap<String, SignalFacts> = BTreeMap::new();
        for p in &design.procs {
            scan_stmt(&p.body, &mut vec![], design, &mut facts, true);
        }
        for c in &design.combs {
            scan_stmt(&c.body, &mut vec![], design, &mut facts, false);
        }

        let mut out = Vec::new();
        for (name, f) in &facts {
            let Some(sig) = design.signals.get(name) else {
                continue;
            };
            let is_fsm = sig.kind == SigKind::Reg
                && sig.mem_depth.is_none()
                && sig.width >= cfg.min_width
                && f.clocked_assigns > 0
                && (f.nonconst_assigns == 0 || !cfg.require_constant_assignments)
                && f.conditional_assigns > 0
                && f.in_conditions
                && !(f.arithmetic && cfg.reject_arithmetic)
                && !(f.bit_selected && cfg.reject_bit_select)
                && (f.const_values.len() >= 2 || !cfg.require_constant_assignments);
            if is_fsm {
                out.push(FsmInfo {
                    signal: name.clone(),
                    width: sig.width,
                    states: recover_state_names(design, sig.width, &f.const_values, name),
                });
            }
        }
        out
    }

    /// Detection plus this monitor's manual adds/filters.
    pub fn detect_with_patches(&self, design: &Design) -> Vec<FsmInfo> {
        let mut fsms: Vec<FsmInfo> = Self::detect(design)
            .into_iter()
            .filter(|f| !self.filtered.contains(&f.signal))
            .collect();
        for name in &self.extra {
            if fsms.iter().any(|f| &f.signal == name) {
                continue;
            }
            if let Some(sig) = design.signals.get(name) {
                fsms.push(FsmInfo {
                    signal: name.clone(),
                    width: sig.width,
                    states: recover_state_names(design, sig.width, &BTreeSet::new(), name),
                });
            }
        }
        fsms
    }

    /// Instruments the design to log every state transition of the
    /// detected (plus patched) FSMs.
    ///
    /// # Errors
    ///
    /// [`ToolError::NothingToInstrument`] when no FSM is found, and
    /// [`ToolError::NoClock`] when a monitored register has no clock.
    pub fn instrument(&self, design: &Design) -> Result<FsmInstrumented, ToolError> {
        let fsms = self.detect_with_patches(design);
        if fsms.is_empty() {
            return Err(ToolError::NothingToInstrument("no FSM detected".into()));
        }
        let (clocks, primary) = clock_map(design);
        let mut module = design.flat.clone();
        let mut new_items = Vec::new();
        for fsm in &fsms {
            let clock = clocks
                .get(&fsm.signal)
                .cloned()
                .or_else(|| primary.clone())
                .ok_or(ToolError::NoClock)?;
            let prev = format!("__fsmmon_prev_{}", fsm.signal);
            new_items.push(Item::Net(NetDecl::vector(
                NetKind::Reg,
                prev.clone(),
                fsm.width,
            )));
            // always @(posedge clk) begin
            //   __fsmmon_prev <= state;
            //   if (__fsmmon_prev != state)
            //     $display("FSMMON <name> %0d %0d", __fsmmon_prev, state);
            // end
            let body = Stmt::Block(vec![
                Stmt::nonblocking(LValue::Id(prev.clone()), Expr::ident(fsm.signal.clone())),
                Stmt::if_then(
                    Expr::Binary(
                        hwdbg_rtl::BinaryOp::Ne,
                        Box::new(Expr::ident(prev.clone())),
                        Box::new(Expr::ident(fsm.signal.clone())),
                    ),
                    Stmt::Display {
                        format: format!("FSMMON {} %0d %0d", fsm.signal),
                        args: vec![Expr::ident(prev.clone()), Expr::ident(fsm.signal.clone())],
                        span: Span::synthetic(),
                    },
                ),
            ]);
            new_items.push(Item::Always {
                event: hwdbg_rtl::EventControl::Edges(vec![hwdbg_rtl::Edge {
                    posedge: true,
                    signal: clock,
                }]),
                body,
                span: Span::synthetic(),
            });
        }
        let lines = generated_lines(&new_items);
        module.items.extend(new_items);
        Ok(FsmInstrumented {
            module,
            fsms,
            generated_lines: lines,
        })
    }

    /// Reconstructs the state-transition trace from a simulation of the
    /// instrumented design (or from SignalCat-reconstructed records).
    pub fn reconstruct(info: &FsmInstrumented, logs: &[LogRecord]) -> Vec<FsmTransition> {
        let mut out = Vec::new();
        for rec in logs {
            let Some(rest) = rec.message.strip_prefix("FSMMON ") else {
                continue;
            };
            let mut parts = rest.split_whitespace();
            let (Some(sig), Some(from), Some(to)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let (Ok(from), Ok(to)) = (from.parse::<u64>(), to.parse::<u64>()) else {
                continue;
            };
            let Some(fsm) = info.fsms.iter().find(|f| f.signal == sig) else {
                continue;
            };
            out.push(FsmTransition {
                signal: sig.to_owned(),
                cycle: rec.cycle,
                from,
                to,
                from_name: fsm.state_name(from),
                to_name: fsm.state_name(to),
            });
        }
        out
    }

    /// Convenience: reconstruct directly from a simulator's captured logs.
    pub fn trace(info: &FsmInstrumented, sim: &Simulator) -> Vec<FsmTransition> {
        Self::reconstruct(info, sim.logs())
    }

    /// Like [`FsmMonitor::trace`], but marks the trace *degraded* when an
    /// FSM with labeled states was observed entering a value none of its
    /// `localparam`s name — the signature of a perturbed or corrupted
    /// state register (stuck-at/bit-flip faults land here). One warning
    /// is emitted per distinct (register, unlabeled state) pair.
    pub fn trace_checked(
        info: &FsmInstrumented,
        sim: &Simulator,
    ) -> hwdbg_diag::Checked<Vec<FsmTransition>> {
        use hwdbg_diag::{Checked, ErrorCode, HwdbgError};
        use std::collections::BTreeSet;
        let transitions = Self::trace(info, sim);
        let mut checked = Checked::clean(Vec::new());
        let mut flagged: BTreeSet<(String, u64)> = BTreeSet::new();
        for t in &transitions {
            let Some(fsm) = info.fsms.iter().find(|f| f.signal == t.signal) else {
                continue;
            };
            if fsm.states.is_empty() || fsm.states.contains_key(&t.to) {
                continue;
            }
            if flagged.insert((t.signal.clone(), t.to)) {
                checked = checked.degraded(
                    HwdbgError::warning(
                        ErrorCode::DegradedOutput,
                        format!(
                            "FSM `{}` entered unlabeled state {} at cycle {}; the \
                             register may be corrupted or forced",
                            t.signal, t.to, t.cycle
                        ),
                    )
                    .with_signal(&t.signal),
                );
            }
        }
        checked.value = transitions;
        checked
    }

    /// Accumulates the number of observed state transitions into the
    /// observability registry.
    pub fn observe(
        info: &FsmInstrumented,
        sim: &Simulator,
        counters: &mut hwdbg_obs::SimCounters,
    ) {
        counters.fsm_transitions += Self::trace(info, sim).len() as u64;
    }
}

/// Facts accumulated about each assigned signal during the scan.
#[derive(Debug, Default)]
struct SignalFacts {
    clocked_assigns: usize,
    conditional_assigns: usize,
    nonconst_assigns: usize,
    const_values: BTreeSet<u64>,
    in_conditions: bool,
    arithmetic: bool,
    bit_selected: bool,
}

/// Whether an expression is constant with respect to the design's
/// parameters, and its value if so.
fn const_value(e: &Expr, design: &Design) -> Option<Bits> {
    hwdbg_dataflow::eval_const(e, &design.consts).ok()
}

/// `state <= state` (hold) and ternaries over constants also count as
/// constant-only assignments for the purpose of rule (1).
fn rhs_const_values(e: &Expr, lhs: &str, design: &Design, vals: &mut BTreeSet<u64>) -> bool {
    if let Expr::Ident(n) = e {
        if n == lhs {
            return true; // self-hold
        }
    }
    if let Expr::Ternary(_, t, f) = e {
        return rhs_const_values(t, lhs, design, vals) && rhs_const_values(f, lhs, design, vals);
    }
    match const_value(e, design) {
        Some(v) => {
            vals.insert(v.to_u64());
            true
        }
        None => false,
    }
}

fn note_condition_idents(e: &Expr, facts: &mut BTreeMap<String, SignalFacts>) {
    for n in e.idents() {
        facts.entry(n.to_owned()).or_default().in_conditions = true;
    }
}

fn note_expr_usage(e: &Expr, facts: &mut BTreeMap<String, SignalFacts>) {
    match e {
        Expr::Binary(op, l, r) => {
            if matches!(
                op,
                hwdbg_rtl::BinaryOp::Add
                    | hwdbg_rtl::BinaryOp::Sub
                    | hwdbg_rtl::BinaryOp::Mul
                    | hwdbg_rtl::BinaryOp::Div
                    | hwdbg_rtl::BinaryOp::Mod
            ) {
                for n in l.idents().into_iter().chain(r.idents()) {
                    facts.entry(n.to_owned()).or_default().arithmetic = true;
                }
            }
            note_expr_usage(l, facts);
            note_expr_usage(r, facts);
        }
        Expr::Index(n, i) => {
            facts.entry(n.clone()).or_default().bit_selected = true;
            note_expr_usage(i, facts);
        }
        Expr::Range(n, a, b) => {
            facts.entry(n.clone()).or_default().bit_selected = true;
            note_expr_usage(a, facts);
            note_expr_usage(b, facts);
        }
        Expr::Unary(_, inner) | Expr::WidthCast(_, inner) | Expr::SignCast(_, inner) => {
            note_expr_usage(inner, facts)
        }
        Expr::Ternary(c, t, f) => {
            note_expr_usage(c, facts);
            note_expr_usage(t, facts);
            note_expr_usage(f, facts);
        }
        Expr::Concat(parts) => {
            for p in parts {
                note_expr_usage(p, facts);
            }
        }
        Expr::Repeat(a, b) => {
            note_expr_usage(a, facts);
            note_expr_usage(b, facts);
        }
        Expr::Literal { .. } | Expr::Ident(_) => {}
    }
}

fn scan_stmt(
    stmt: &Stmt,
    cond_depth: &mut Vec<()>,
    design: &Design,
    facts: &mut BTreeMap<String, SignalFacts>,
    clocked: bool,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                scan_stmt(s, cond_depth, design, facts, clocked);
            }
        }
        Stmt::If { cond, then, els } => {
            note_condition_idents(cond, facts);
            note_expr_usage(cond, facts);
            cond_depth.push(());
            scan_stmt(then, cond_depth, design, facts, clocked);
            if let Some(e) = els {
                scan_stmt(e, cond_depth, design, facts, clocked);
            }
            cond_depth.pop();
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            note_condition_idents(expr, facts);
            note_expr_usage(expr, facts);
            cond_depth.push(());
            for arm in arms {
                for l in &arm.labels {
                    note_expr_usage(l, facts);
                }
                scan_stmt(&arm.body, cond_depth, design, facts, clocked);
            }
            if let Some(d) = default {
                scan_stmt(d, cond_depth, design, facts, clocked);
            }
            cond_depth.pop();
        }
        Stmt::Assign { lhs, rhs, .. } => {
            note_expr_usage(rhs, facts);
            match lhs {
                LValue::Id(name) => {
                    let mut vals = BTreeSet::new();
                    let all_const = rhs_const_values(rhs, name, design, &mut vals);
                    let f = facts.entry(name.clone()).or_default();
                    if clocked {
                        f.clocked_assigns += 1;
                    }
                    if !cond_depth.is_empty() {
                        f.conditional_assigns += 1;
                    }
                    if all_const {
                        f.const_values.extend(vals);
                    } else {
                        f.nonconst_assigns += 1;
                    }
                }
                LValue::Index(name, _) | LValue::Range(name, _, _) => {
                    facts.entry(name.clone()).or_default().bit_selected = true;
                }
                LValue::Concat(_) => {
                    for n in lhs.target_names() {
                        facts.entry(n.to_owned()).or_default().bit_selected = true;
                    }
                }
            }
        }
        Stmt::For { body, .. } => scan_stmt(body, cond_depth, design, facts, clocked),
        Stmt::Display { .. } | Stmt::Finish | Stmt::Empty => {}
    }
}

/// Maps constant state values back to localparam names of matching value.
/// On collisions (two localparams with the same value), prefers the name
/// sharing the longest prefix with the FSM signal's name, so `wr_state`
/// resolves 1 to `WR_DATA` rather than `RD_DATA`.
fn recover_state_names(
    design: &Design,
    width: u32,
    values: &BTreeSet<u64>,
    signal: &str,
) -> BTreeMap<u64, String> {
    let affinity = |candidate: &str| -> usize {
        let a = candidate.to_ascii_lowercase();
        let b = signal.to_ascii_lowercase();
        a.bytes().zip(b.bytes()).take_while(|(x, y)| x == y).count()
    };
    let mut out = BTreeMap::new();
    for (name, v) in &design.consts {
        let val = v.resize(width.max(1)).to_u64();
        if (values.is_empty() || values.contains(&val)) && v.to_u64() == val {
            out.entry(val)
                .and_modify(|cur: &mut String| {
                    let better = (affinity(name), std::cmp::Reverse(name.len()))
                        > (affinity(cur), std::cmp::Reverse(cur.len()));
                    if better {
                        *cur = name.clone();
                    }
                })
                .or_insert_with(|| name.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_sim::{NoModels, SimConfig};

    const FSM_SRC: &str = "module m(input clk, input request_valid, input work_done);
        localparam IDLE = 2'd0;
        localparam WORK = 2'd1;
        localparam FINISH = 2'd2;
        reg [1:0] state;
        reg [7:0] counter;
        always @(posedge clk) begin
            case (state)
                IDLE: if (request_valid) state <= WORK;
                WORK: if (work_done) state <= FINISH;
                FINISH: state <= IDLE;
                default: state <= IDLE;
            endcase
            counter <= counter + 8'd1;
        end
    endmodule";

    fn design() -> Design {
        elaborate(&hwdbg_rtl::parse(FSM_SRC).unwrap(), "m", &NoBlackboxes).unwrap()
    }

    #[test]
    fn detects_paper_listing1_fsm() {
        let fsms = FsmMonitor::detect(&design());
        assert_eq!(fsms.len(), 1);
        let f = &fsms[0];
        assert_eq!(f.signal, "state");
        assert_eq!(f.state_name(0), "IDLE");
        assert_eq!(f.state_name(1), "WORK");
        assert_eq!(f.state_name(2), "FINISH");
    }

    #[test]
    fn counter_is_not_an_fsm() {
        let fsms = FsmMonitor::detect(&design());
        assert!(!fsms.iter().any(|f| f.signal == "counter"));
    }

    #[test]
    fn counter_encoded_fsm_is_a_false_negative_until_patched() {
        // `phase <= phase + 1` — a real FSM the heuristics miss (arith).
        let src = "module m(input clk, input go, output reg [1:0] phase);
            always @(posedge clk) if (go) phase <= phase + 2'd1;
        endmodule";
        let d = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
        assert!(FsmMonitor::detect(&d).is_empty());
        let mut mon = FsmMonitor::new();
        mon.add_signal("phase");
        let patched = mon.detect_with_patches(&d);
        assert_eq!(patched.len(), 1);
        assert_eq!(patched[0].signal, "phase");
    }

    #[test]
    fn one_bit_flag_is_not_an_fsm() {
        let src = "module m(input clk, input set, input clr, output reg flag, output reg [3:0] q);
            always @(posedge clk) begin
                if (set) flag <= 1'b1;
                else if (clr) flag <= 1'b0;
                if (flag) q <= 4'd1;
            end
        endmodule";
        let d = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
        assert!(FsmMonitor::detect(&d).is_empty());
    }

    #[test]
    fn instrument_and_trace_transitions() {
        let d = design();
        let info = FsmMonitor::new().instrument(&d).unwrap();
        assert!(info.generated_lines >= 4);
        let d2 = hwdbg_dataflow::resolve(info.module.clone(), &NoBlackboxes).unwrap();
        let mut sim = hwdbg_sim::Simulator::new(d2, &NoModels, SimConfig::default()).unwrap();
        sim.poke_u64("request_valid", 1).unwrap();
        sim.step("clk").unwrap(); // IDLE -> WORK
        sim.poke_u64("request_valid", 0).unwrap();
        sim.step("clk").unwrap(); // transition visible to monitor
        sim.poke_u64("work_done", 1).unwrap();
        sim.step("clk").unwrap(); // WORK -> FINISH
        sim.poke_u64("work_done", 0).unwrap();
        sim.step("clk").unwrap(); // FINISH -> IDLE
        sim.step("clk").unwrap();
        sim.step("clk").unwrap();
        let trace = FsmMonitor::trace(&info, &sim);
        let names: Vec<_> = trace
            .iter()
            .map(|t| format!("{}->{}", t.from_name, t.to_name))
            .collect();
        assert_eq!(
            names,
            vec!["IDLE->WORK", "WORK->FINISH", "FINISH->IDLE"],
            "{trace:?}"
        );
    }

    #[test]
    fn relaxed_heuristics_trade_fn_for_fp() {
        // A one-hot ring FSM: missed by default (rules 1 and 5), found when
        // both are relaxed — along with any shift register, the FP risk.
        let src = "module m(input clk, input adv, output reg [3:0] phase, output reg hit);
            always @(posedge clk) begin
                if (adv) phase <= {phase[2:0], phase[3]};
                if (phase[2]) hit <= 1'b1;
            end
        endmodule";
        let d = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &NoBlackboxes).unwrap();
        assert!(FsmMonitor::detect(&d).is_empty());
        let relaxed = FsmDetectConfig {
            require_constant_assignments: false,
            reject_bit_select: false,
            ..FsmDetectConfig::default()
        };
        let found = FsmMonitor::detect_with_config(&d, &relaxed);
        assert!(found.iter().any(|f| f.signal == "phase"), "{found:?}");
    }

    #[test]
    fn filter_signal_removes_detection() {
        let d = design();
        let mut mon = FsmMonitor::new();
        mon.filter_signal("state");
        assert!(mon.detect_with_patches(&d).is_empty());
    }
}
