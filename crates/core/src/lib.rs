//! The FPGA bug-localization toolkit of the paper: SignalCat, FSM Monitor,
//! Dependency Monitor, Statistics Monitor, and LossCheck.
//!
//! Every tool is a hybrid static/dynamic analysis implemented as a pass
//! over the flat module AST (the same architecture as the paper's
//! Pyverilog passes):
//!
//! * the **static** half inspects the design (path constraints, FSM
//!   heuristics, dependency chains, propagation relations) and splices new
//!   declarations, wires, and clocked logic into the module;
//! * the **dynamic** half runs the instrumented design — in simulation or
//!   "on FPGA" (the [`TraceBuffer`](hwdbg_ip::TraceBuffer) recording IP) —
//!   and reconstructs human-readable logs afterwards.
//!
//! Because instrumentation is real Verilog handed back to the elaborator,
//! the resource and timing cost measured by `hwdbg-synth` is the cost a
//! real deployment would pay — which is what the paper's Figures 2 and 3
//! report.
//!
//! # Examples
//!
//! ```
//! use hwdbg_tools::fsm::FsmMonitor;
//! use hwdbg_dataflow::{elaborate, NoBlackboxes};
//!
//! let design = elaborate(
//!     &hwdbg_rtl::parse(
//!         "module m(input clk, input go, input done);
//!            localparam IDLE = 2'd0; localparam WORK = 2'd1; localparam FIN = 2'd2;
//!            reg [1:0] state;
//!            always @(posedge clk)
//!              case (state)
//!                IDLE: if (go) state <= WORK;
//!                WORK: if (done) state <= FIN;
//!                FIN: state <= IDLE;
//!                default: state <= IDLE;
//!              endcase
//!          endmodule",
//!     )?,
//!     "m",
//!     &NoBlackboxes,
//! )?;
//! let fsms = FsmMonitor::detect(&design);
//! assert_eq!(fsms.len(), 1);
//! assert_eq!(fsms[0].signal, "state");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod depmon;
pub mod fsm;
pub mod losscheck;
pub mod signalcat;
pub mod statmon;

pub use depmon::{DependencyMonitor, PartialAssign};
pub use fsm::{FsmDetectConfig, FsmMonitor};
pub use losscheck::LossCheck;
pub use signalcat::SignalCat;
pub use statmon::StatisticsMonitor;

use hwdbg_dataflow::Design;
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by the debugging tools.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ToolError {
    /// A named signal does not exist in the design.
    UnknownSignal(String),
    /// The design has no clocked logic to attach instrumentation to.
    NoClock,
    /// The analysis found nothing to instrument.
    NothingToInstrument(String),
    /// Re-elaborating the instrumented module failed (a tool bug).
    Elaboration(String),
    /// No propagation path exists between the given source and sink.
    NoPath {
        /// Configured source register.
        source: String,
        /// Configured sink register.
        sink: String,
    },
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            ToolError::NoClock => write!(f, "design has no clocked process"),
            ToolError::NothingToInstrument(what) => {
                write!(f, "nothing to instrument: {what}")
            }
            ToolError::Elaboration(e) => write!(f, "instrumented design failed to elaborate: {e}"),
            ToolError::NoPath { source, sink } => {
                write!(f, "no propagation path from `{source}` to `{sink}`")
            }
        }
    }
}

impl std::error::Error for ToolError {}

impl From<ToolError> for hwdbg_diag::HwdbgError {
    fn from(e: ToolError) -> Self {
        use hwdbg_diag::{ErrorCode, HwdbgError};
        let message = e.to_string();
        let (code, signals): (ErrorCode, Vec<String>) = match &e {
            ToolError::UnknownSignal(n) => (ErrorCode::UnknownSignal, vec![n.clone()]),
            ToolError::NoClock => (ErrorCode::NoClock, vec![]),
            ToolError::NothingToInstrument(_) => (ErrorCode::NothingToInstrument, vec![]),
            ToolError::Elaboration(_) => (ErrorCode::ToolElaboration, vec![]),
            ToolError::NoPath { source, sink } => {
                (ErrorCode::NoPath, vec![source.clone(), sink.clone()])
            }
        };
        HwdbgError::new(code, message).with_signals(signals)
    }
}

/// Maps every clocked register to the clock that writes it, and returns
/// the design's primary clock (the one driving the most registers).
pub fn clock_map(design: &Design) -> (BTreeMap<String, String>, Option<String>) {
    let mut map = BTreeMap::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for p in &design.procs {
        let Some(edge) = p.edges.iter().find(|e| e.posedge) else {
            continue;
        };
        for w in &p.writes {
            map.insert(w.clone(), edge.signal.clone());
            *counts.entry(edge.signal.clone()).or_insert(0) += 1;
        }
    }
    let primary = counts
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(clk, _)| clk);
    (map, primary)
}

/// Counts the lines of Verilog a set of generated items prints to —
/// the "lines of analysis code the developer did not have to write"
/// metric from §6.3 of the paper.
pub fn generated_lines(items: &[hwdbg_rtl::Item]) -> usize {
    let module = hwdbg_rtl::Module {
        name: "__generated".into(),
        params: vec![],
        ports: vec![],
        items: items.to_vec(),
        span: hwdbg_rtl::Span::synthetic(),
    };
    let printed = hwdbg_rtl::print_module(&module);
    // Subtract the header and endmodule lines.
    printed.lines().count().saturating_sub(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};

    #[test]
    fn clock_map_finds_primary() {
        let design = elaborate(
            &hwdbg_rtl::parse(
                "module m(input clk, input clk2);
                    reg a;
                    reg b;
                    reg c;
                    always @(posedge clk) begin a <= 1'b1; b <= 1'b0; end
                    always @(posedge clk2) c <= 1'b1;
                 endmodule",
            )
            .unwrap(),
            "m",
            &NoBlackboxes,
        )
        .unwrap();
        let (map, primary) = clock_map(&design);
        assert_eq!(map.get("a").unwrap(), "clk");
        assert_eq!(map.get("c").unwrap(), "clk2");
        assert_eq!(primary.as_deref(), Some("clk"));
    }

    #[test]
    fn generated_lines_counts_body() {
        use hwdbg_rtl::{Item, NetDecl, NetKind};
        let items = vec![
            Item::Net(NetDecl::scalar(NetKind::Wire, "a")),
            Item::Net(NetDecl::vector(NetKind::Reg, "b", 8)),
        ];
        assert_eq!(generated_lines(&items), 2);
    }
}
