//! SignalCat: unified logging for simulation and on-FPGA debugging (§4.1).
//!
//! SignalCat discovers `$display` statements in the clocked logic of a
//! design, extracts each statement's *path constraint* (the conditions
//! under which it executes), and replaces the statements with synthesizable
//! recording logic: one [`TraceBuffer`](hwdbg_ip::TraceBuffer) instance per
//! clock domain whose `din` carries all statement arguments plus a 1-bit
//! encoded path constraint per statement, and whose `enable` is the OR of
//! the constraints. After execution, [`SignalCat::reconstruct`] turns the
//! captured entries back into the exact log the `$display`s would have
//! printed — the same output in simulation and deployment.

use crate::{generated_lines, ToolError};
use hwdbg_dataflow::Design;
use hwdbg_ip::TraceBuffer;
use hwdbg_rtl::{
    BinaryOp, CaseArm, Expr, Instance, Item, LValue, Module, NetDecl, NetKind, Span, Stmt,
    UnaryOp,
};
use hwdbg_sim::{LogRecord, Simulator};

/// SignalCat configuration.
#[derive(Debug, Clone)]
pub struct SignalCatConfig {
    /// Entries per recording buffer (the paper's evaluation sweeps
    /// 1K–8K; default 8,192 per §6.1).
    pub buffer_depth: u64,
    /// If nonzero, recording stops this many cycles after `trigger`
    /// (capture-around-event, §4.1). Zero records continuously.
    pub post_trigger: u64,
    /// Optional trigger expression (parsed against the flat module's
    /// signal names), e.g. an assertion signal.
    pub trigger: Option<Expr>,
}

impl Default for SignalCatConfig {
    fn default() -> Self {
        SignalCatConfig {
            buffer_depth: 8192,
            post_trigger: 0,
            trigger: None,
        }
    }
}

/// A discovered `$display` statement with its static metadata.
#[derive(Debug, Clone)]
pub struct DisplayStmt {
    /// Index within the instrumentation (bit position of its constraint).
    pub id: usize,
    /// Format string.
    pub format: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
    /// Resolved argument widths.
    pub arg_widths: Vec<u32>,
    /// Path constraint: true in exactly the cycles the statement executes.
    pub constraint: Expr,
    /// Clock of the process containing the statement.
    pub clock: String,
}

/// One recording buffer (per clock domain).
#[derive(Debug, Clone)]
pub struct BufferInfo {
    /// Clock signal name.
    pub clock: String,
    /// Instance name of the `trace_buffer`.
    pub inst: String,
    /// IDs of the statements it records (bit `k` of the payload's low
    /// bits is statement `stmt_ids[k]`'s constraint).
    pub stmt_ids: Vec<usize>,
    /// Total payload width.
    pub payload_width: u32,
}

/// Result of SignalCat instrumentation.
#[derive(Debug, Clone)]
pub struct SignalCatInstrumented {
    /// The instrumented flat module (displays replaced by recording logic).
    pub module: Module,
    /// Discovered statements.
    pub statements: Vec<DisplayStmt>,
    /// Recording buffers, one per clock domain.
    pub buffers: Vec<BufferInfo>,
    /// Lines of Verilog the tool generated (§6.3 metric).
    pub generated_lines: usize,
}

/// The SignalCat tool (stateless; methods are associated functions).
#[derive(Debug, Clone, Copy, Default)]
pub struct SignalCat;

impl SignalCat {
    /// Discovers the `$display` statements of a design without
    /// instrumenting: statement metadata including path constraints.
    pub fn discover(design: &Design) -> Vec<DisplayStmt> {
        let mut stmts = Vec::new();
        for p in &design.procs {
            let Some(edge) = p.edges.iter().find(|e| e.posedge) else {
                continue;
            };
            let mut conds: Vec<Expr> = Vec::new();
            collect_displays(&p.body, &mut conds, &edge.signal, design, &mut stmts);
        }
        stmts
    }

    /// Instruments `design`: strips `$display`s from clocked logic and
    /// splices in constraint wires, argument wires, payload assembly, and
    /// one `trace_buffer` instance per clock domain.
    ///
    /// # Errors
    ///
    /// [`ToolError::NothingToInstrument`] if the design has no `$display`
    /// statements under a clock.
    pub fn instrument(
        design: &Design,
        cfg: &SignalCatConfig,
    ) -> Result<SignalCatInstrumented, ToolError> {
        let statements = Self::discover(design);
        if statements.is_empty() {
            return Err(ToolError::NothingToInstrument(
                "no $display statements in clocked logic".into(),
            ));
        }
        let mut module = design.flat.clone();
        strip_displays(&mut module);

        let mut new_items: Vec<Item> = Vec::new();
        // Constraint and argument wires.
        for s in &statements {
            new_items.push(Item::Net(NetDecl::scalar(
                NetKind::Wire,
                cond_wire(s.id),
            )));
            new_items.push(Item::Assign {
                lhs: LValue::Id(cond_wire(s.id)),
                rhs: to_bool(s.constraint.clone(), design),
                span: Span::synthetic(),
            });
            for (j, (arg, w)) in s.args.iter().zip(&s.arg_widths).enumerate() {
                new_items.push(Item::Net(NetDecl::vector(
                    NetKind::Wire,
                    arg_wire(s.id, j),
                    *w,
                )));
                new_items.push(Item::Assign {
                    lhs: LValue::Id(arg_wire(s.id, j)),
                    rhs: arg.clone(),
                    span: Span::synthetic(),
                });
            }
        }

        // Group statements by clock; one buffer per clock.
        let mut buffers: Vec<BufferInfo> = Vec::new();
        let mut clocks: Vec<String> = statements.iter().map(|s| s.clock.clone()).collect();
        clocks.sort();
        clocks.dedup();
        for (k, clock) in clocks.iter().enumerate() {
            let stmt_ids: Vec<usize> = statements
                .iter()
                .filter(|s| &s.clock == clock)
                .map(|s| s.id)
                .collect();
            let n_conds = stmt_ids.len() as u32;
            let mut payload_width = n_conds;
            for &id in &stmt_ids {
                payload_width += statements[id].arg_widths.iter().sum::<u32>();
            }
            let din = format!("__sc_din_{k}");
            let en = format!("__sc_en_{k}");
            new_items.push(Item::Net(NetDecl::vector(
                NetKind::Wire,
                din.clone(),
                payload_width.max(1),
            )));
            new_items.push(Item::Net(NetDecl::scalar(NetKind::Wire, en.clone())));
            // enable = OR of constraints.
            new_items.push(Item::Assign {
                lhs: LValue::Id(en.clone()),
                rhs: Expr::any(stmt_ids.iter().map(|&id| Expr::ident(cond_wire(id)))),
                span: Span::synthetic(),
            });
            // Payload layout: constraint bits in the low `n_conds` bits
            // (bit k = stmt_ids[k]), arguments packed above in order.
            for (bit, &id) in stmt_ids.iter().enumerate() {
                new_items.push(Item::Assign {
                    lhs: LValue::Index(din.clone(), Expr::number(bit as u64)),
                    rhs: Expr::ident(cond_wire(id)),
                    span: Span::synthetic(),
                });
            }
            let mut lo = n_conds;
            for &id in &stmt_ids {
                for (j, w) in statements[id].arg_widths.iter().enumerate() {
                    if *w == 0 {
                        continue;
                    }
                    new_items.push(Item::Assign {
                        lhs: LValue::Range(
                            din.clone(),
                            Expr::number(u64::from(lo + w - 1)),
                            Expr::number(u64::from(lo)),
                        ),
                        rhs: Expr::ident(arg_wire(id, j)),
                        span: Span::synthetic(),
                    });
                    lo += w;
                }
            }
            let inst = format!("__sc_buf_{k}");
            let mut conns = vec![
                ("clock".to_string(), Some(Expr::ident(clock.clone()))),
                ("enable".to_string(), Some(Expr::ident(en))),
                ("din".to_string(), Some(Expr::ident(din))),
            ];
            if let Some(trig) = &cfg.trigger {
                conns.push(("trigger".to_string(), Some(trig.clone())));
            }
            new_items.push(Item::Instance(Instance {
                module: hwdbg_ip::TRACE_BUFFER_MODULE.into(),
                name: inst.clone(),
                params: vec![
                    ("WIDTH".into(), Expr::number(u64::from(payload_width.max(1)))),
                    ("DEPTH".into(), Expr::number(cfg.buffer_depth)),
                    ("POST".into(), Expr::number(cfg.post_trigger)),
                ],
                conns,
                span: Span::synthetic(),
            }));
            buffers.push(BufferInfo {
                clock: clock.clone(),
                inst,
                stmt_ids,
                payload_width: payload_width.max(1),
            });
        }

        let lines = generated_lines(&new_items);
        module.items.extend(new_items);
        Ok(SignalCatInstrumented {
            module,
            statements,
            buffers,
            generated_lines: lines,
        })
    }

    /// Reconstructs the log from the recording buffers of a finished
    /// simulation of the instrumented design. The output equals what the
    /// original `$display` statements would have printed.
    pub fn reconstruct(info: &SignalCatInstrumented, sim: &Simulator) -> Vec<LogRecord> {
        let mut out = Vec::new();
        for buf in &info.buffers {
            let Some(bb) = sim.blackbox(&buf.inst) else {
                continue;
            };
            let Some(tb) = bb.as_any().downcast_ref::<TraceBuffer>() else {
                continue;
            };
            for entry in tb.entries() {
                // Arguments are packed above the constraint bits in
                // stmt_ids order; walk the layout in lockstep.
                let n_conds = buf.stmt_ids.len() as u32;
                let mut lo = n_conds;
                for (bit, &id) in buf.stmt_ids.iter().enumerate() {
                    let s = &info.statements[id];
                    let arg_total: u32 = s.arg_widths.iter().sum();
                    if entry.data.bit(bit as u32) {
                        let mut vals = Vec::new();
                        let mut alo = lo;
                        for w in &s.arg_widths {
                            vals.push(entry.data.slice(alo, *w));
                            alo += w;
                        }
                        out.push(LogRecord {
                            time: entry.cycle,
                            cycle: entry.cycle,
                            message: hwdbg_sim::format::render(&s.format, &vals),
                        });
                    }
                    lo += arg_total;
                }
            }
        }
        out.sort_by_key(|r| r.cycle);
        out
    }

    /// Like [`SignalCat::reconstruct`], but marks the result *degraded*
    /// when the reconstructed log is a provably incomplete view of the
    /// run: a ring buffer wrapped (oldest records overwritten) or a
    /// buffer instance is missing from the simulation entirely. The log
    /// itself is still returned — degraded output beats no output when
    /// debugging deployed hardware (§2).
    pub fn reconstruct_checked(
        info: &SignalCatInstrumented,
        sim: &Simulator,
    ) -> hwdbg_diag::Checked<Vec<LogRecord>> {
        use hwdbg_diag::{Checked, ErrorCode, HwdbgError};
        let mut checked = Checked::clean(Self::reconstruct(info, sim));
        for buf in &info.buffers {
            let tb = sim
                .blackbox(&buf.inst)
                .and_then(|bb| bb.as_any().downcast_ref::<TraceBuffer>());
            match tb {
                None => {
                    checked = checked.degraded(
                        HwdbgError::warning(
                            ErrorCode::DegradedOutput,
                            format!(
                                "recording buffer `{}` (clock `{}`) is absent from the \
                                 simulation; its records are missing from the log",
                                buf.inst, buf.clock
                            ),
                        )
                        .with_signal(&buf.clock),
                    );
                }
                Some(tb) if tb.overwritten() > 0 => {
                    checked = checked.degraded(
                        HwdbgError::warning(
                            ErrorCode::DegradedOutput,
                            format!(
                                "recording buffer `{}` wrapped: the {} oldest records \
                                 were overwritten",
                                buf.inst,
                                tb.overwritten()
                            ),
                        )
                        .with_signal(&buf.clock),
                    );
                }
                Some(_) => {}
            }
        }
        checked
    }

    /// Accumulates recording-buffer occupancy into the observability
    /// registry: captured entries and ring-wrap overwrites per buffer.
    pub fn observe(
        info: &SignalCatInstrumented,
        sim: &Simulator,
        counters: &mut hwdbg_obs::SimCounters,
    ) {
        for buf in &info.buffers {
            let Some(tb) = sim
                .blackbox(&buf.inst)
                .and_then(|bb| bb.as_any().downcast_ref::<TraceBuffer>())
            else {
                continue;
            };
            counters.trace_entries += tb.len() as u64;
            counters.trace_wraps += tb.overwritten();
        }
    }
}

fn cond_wire(id: usize) -> String {
    format!("__sc_c{id}")
}

fn arg_wire(id: usize, j: usize) -> String {
    format!("__sc_a{id}_{j}")
}

/// Reduces an expression to one bit (Verilog truthiness) if needed.
fn to_bool(e: Expr, design: &Design) -> Expr {
    match design.expr_width(&e) {
        Some(1) => e,
        _ => Expr::Unary(UnaryOp::RedOr, Box::new(e)),
    }
}

/// Walks a statement tree maintaining the path-condition stack and records
/// every `$display`.
fn collect_displays(
    stmt: &Stmt,
    conds: &mut Vec<Expr>,
    clock: &str,
    design: &Design,
    out: &mut Vec<DisplayStmt>,
) {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_displays(s, conds, clock, design, out);
            }
        }
        Stmt::If { cond, then, els } => {
            conds.push(cond.clone());
            collect_displays(then, conds, clock, design, out);
            conds.pop();
            if let Some(e) = els {
                conds.push(Expr::Unary(UnaryOp::LogNot, Box::new(cond.clone())));
                collect_displays(e, conds, clock, design, out);
                conds.pop();
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
            ..
        } => {
            let mut not_prior: Vec<Expr> = Vec::new();
            for arm in arms {
                let arm_cond = Expr::any(
                    arm.labels
                        .iter()
                        .map(|l| Expr::eq(expr.clone(), l.clone())),
                );
                let n = not_prior.len() + 1;
                conds.extend(not_prior.iter().cloned());
                conds.push(arm_cond.clone());
                collect_displays(&arm.body, conds, clock, design, out);
                conds.truncate(conds.len() - n);
                not_prior.push(Expr::Unary(UnaryOp::LogNot, Box::new(arm_cond)));
            }
            if let Some(d) = default {
                let n = not_prior.len();
                conds.extend(not_prior.iter().cloned());
                collect_displays(d, conds, clock, design, out);
                conds.truncate(conds.len() - n);
            }
        }
        Stmt::Display { format, args, .. } => {
            let constraint = conds
                .iter()
                .cloned()
                .reduce(|a, b| Expr::Binary(BinaryOp::LogAnd, Box::new(a), Box::new(b)))
                .unwrap_or_else(|| Expr::sized(1, 1));
            out.push(DisplayStmt {
                id: out.len(),
                format: format.clone(),
                arg_widths: args
                    .iter()
                    .map(|a| design.expr_width(a).unwrap_or(1))
                    .collect(),
                args: args.clone(),
                constraint,
                clock: clock.to_owned(),
            });
        }
        Stmt::For { body, .. } => collect_displays(body, conds, clock, design, out),
        _ => {}
    }
}

/// Removes `$display` statements from the clocked logic of a module.
fn strip_displays(module: &mut Module) {
    for item in &mut module.items {
        if let Item::Always { event, body, .. } = item {
            if matches!(event, hwdbg_rtl::EventControl::Edges(_)) {
                strip_stmt(body);
            }
        }
    }
}

fn strip_stmt(stmt: &mut Stmt) {
    match stmt {
        Stmt::Display { .. } => *stmt = Stmt::Empty,
        Stmt::Block(stmts) => {
            for s in stmts.iter_mut() {
                strip_stmt(s);
            }
        }
        Stmt::If { then, els, .. } => {
            strip_stmt(then);
            if let Some(e) = els {
                strip_stmt(e);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for CaseArm { body, .. } in arms.iter_mut() {
                strip_stmt(body);
            }
            if let Some(d) = default {
                strip_stmt(d);
            }
        }
        Stmt::For { body, .. } => strip_stmt(body),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::elaborate;
    use hwdbg_ip::{StdIpLib, StdModels};
    use hwdbg_sim::{SimConfig, Simulator};

    const SRC: &str = r#"module m(input clk, input [7:0] d, input v, output reg [7:0] acc);
        always @(posedge clk) begin
            if (v) begin
                acc <= acc + d;
                $display("accept d=%0d acc=%0d", d, acc);
            end else begin
                $display("idle");
            end
        end
    endmodule"#;

    fn design() -> hwdbg_dataflow::Design {
        elaborate(&hwdbg_rtl::parse(SRC).unwrap(), "m", &StdIpLib::new()).unwrap()
    }

    #[test]
    fn discover_constraints() {
        let stmts = SignalCat::discover(&design());
        assert_eq!(stmts.len(), 2);
        assert_eq!(hwdbg_rtl::print_expr(&stmts[0].constraint), "v");
        assert_eq!(hwdbg_rtl::print_expr(&stmts[1].constraint), "!v");
        assert_eq!(stmts[0].arg_widths, vec![8, 8]);
        assert_eq!(stmts[0].clock, "clk");
    }

    #[test]
    fn reconstruction_matches_native_simulation() {
        let lib = StdIpLib::new();
        // Native run: displays execute in the simulator.
        let d1 = design();
        let mut native = Simulator::new(d1, &StdModels, SimConfig::default()).unwrap();
        drive(&mut native);
        let native_msgs: Vec<_> = native.logs().iter().map(|l| l.message.clone()).collect();
        assert!(!native_msgs.is_empty());

        // Instrumented run: displays stripped, trace buffer records.
        let info = SignalCat::instrument(&design(), &SignalCatConfig::default()).unwrap();
        assert!(info.generated_lines > 0);
        let d2 = hwdbg_dataflow::resolve(info.module.clone(), &lib).unwrap();
        let mut instr = Simulator::new(d2, &StdModels, SimConfig::default()).unwrap();
        drive(&mut instr);
        assert!(instr.logs().is_empty(), "displays must be stripped");
        let rec = SignalCat::reconstruct(&info, &instr);
        let rec_msgs: Vec<_> = rec.iter().map(|l| l.message.clone()).collect();
        assert_eq!(rec_msgs, native_msgs);
    }

    fn drive(sim: &mut Simulator) {
        for (v, d) in [(1u64, 5u64), (0, 0), (1, 7), (1, 2), (0, 0)] {
            sim.poke_u64("v", v).unwrap();
            sim.poke_u64("d", d).unwrap();
            sim.step("clk").unwrap();
        }
    }

    #[test]
    fn buffer_depth_bounds_capture() {
        let lib = StdIpLib::new();
        let cfg = SignalCatConfig {
            buffer_depth: 2,
            ..Default::default()
        };
        let info = SignalCat::instrument(&design(), &cfg).unwrap();
        let d2 = hwdbg_dataflow::resolve(info.module.clone(), &lib).unwrap();
        let mut sim = Simulator::new(d2, &StdModels, SimConfig::default()).unwrap();
        sim.poke_u64("v", 1).unwrap();
        for i in 0..5 {
            sim.poke_u64("d", i).unwrap();
            sim.step("clk").unwrap();
        }
        let rec = SignalCat::reconstruct(&info, &sim);
        assert_eq!(rec.len(), 2, "ring keeps only the last DEPTH entries");
        assert!(rec[1].message.contains("d=4"));
    }

    #[test]
    fn observe_reports_buffer_occupancy() {
        let lib = StdIpLib::new();
        let info = SignalCat::instrument(&design(), &SignalCatConfig::default()).unwrap();
        let d2 = hwdbg_dataflow::resolve(info.module.clone(), &lib).unwrap();
        let mut sim = Simulator::new(d2, &StdModels, SimConfig::default()).unwrap();
        drive(&mut sim);
        let mut c = hwdbg_obs::SimCounters::default();
        SignalCat::observe(&info, &sim, &mut c);
        assert_eq!(c.trace_entries, 5, "one record per driven cycle");
        assert_eq!(c.trace_wraps, 0);
    }

    #[test]
    fn no_displays_is_an_error() {
        let src = "module m(input clk, output reg q);
            always @(posedge clk) q <= ~q;
        endmodule";
        let d = elaborate(&hwdbg_rtl::parse(src).unwrap(), "m", &StdIpLib::new()).unwrap();
        assert!(matches!(
            SignalCat::instrument(&d, &SignalCatConfig::default()),
            Err(ToolError::NothingToInstrument(_))
        ));
    }
}
