//! Statistics Monitor: event counters for bug localization (§4.4).
//!
//! The developer names single-bit events of interest (a valid strobe, an
//! interrupt, a drop condition). The monitor splices a 32-bit counter per
//! event into the design plus logging on every change, so statistical
//! anomalies — e.g. fewer valid outputs than valid inputs, the signature
//! of data loss — can be read off directly.

use crate::{clock_map, generated_lines, ToolError};
use hwdbg_dataflow::Design;
use hwdbg_rtl::{Expr, Item, LValue, Module, NetDecl, NetKind, Span, Stmt, UnaryOp};
use hwdbg_sim::Simulator;
use std::collections::BTreeMap;

/// One monitored event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Short name used in counter signals and log lines.
    pub name: String,
    /// The event expression (counted on cycles where it is truthy).
    pub expr: Expr,
}

impl Event {
    /// Creates an event from a name and an expression over flat signal
    /// names, e.g. `Event::new("in_valid", parse_expr("in_valid")?)`.
    pub fn new(name: impl Into<String>, expr: Expr) -> Self {
        Event {
            name: name.into(),
            expr,
        }
    }
}

/// Result of Statistics Monitor instrumentation.
#[derive(Debug, Clone)]
pub struct StatInstrumented {
    /// The instrumented module.
    pub module: Module,
    /// Monitored events in order.
    pub events: Vec<Event>,
    /// Lines of Verilog generated.
    pub generated_lines: usize,
}

/// The Statistics Monitor tool.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatisticsMonitor;

impl StatisticsMonitor {
    /// Counter signal name for an event.
    pub fn counter_name(event: &str) -> String {
        format!("__stat_cnt_{event}")
    }

    /// Instruments the design with one counter per event. Events are
    /// sampled on the design's primary clock unless `clock` is given.
    ///
    /// # Errors
    ///
    /// Fails when `events` is empty, the design has no clock, or an event
    /// expression references unknown signals.
    pub fn instrument(
        design: &Design,
        events: &[Event],
        clock: Option<&str>,
    ) -> Result<StatInstrumented, ToolError> {
        if events.is_empty() {
            return Err(ToolError::NothingToInstrument("no events given".into()));
        }
        let (_, primary) = clock_map(design);
        let clock = match clock {
            Some(c) => c.to_owned(),
            None => primary.ok_or(ToolError::NoClock)?,
        };
        for ev in events {
            for n in ev.expr.idents() {
                if !design.signals.contains_key(n) && !design.consts.contains_key(n) {
                    return Err(ToolError::UnknownSignal(n.to_owned()));
                }
            }
        }

        let mut module = design.flat.clone();
        let mut new_items = Vec::new();
        for ev in events {
            let cnt = Self::counter_name(&ev.name);
            new_items.push(Item::Net(NetDecl::vector(NetKind::Reg, cnt.clone(), 32)));
            let truthy = match design.expr_width(&ev.expr) {
                Some(1) => ev.expr.clone(),
                _ => Expr::Unary(UnaryOp::RedOr, Box::new(ev.expr.clone())),
            };
            let body = Stmt::if_then(
                truthy,
                Stmt::Block(vec![
                    Stmt::nonblocking(
                        LValue::Id(cnt.clone()),
                        Expr::add(Expr::ident(cnt.clone()), Expr::sized(32, 1)),
                    ),
                    Stmt::Display {
                        format: format!("STATMON {} %0d", ev.name),
                        args: vec![Expr::add(Expr::ident(cnt.clone()), Expr::sized(32, 1))],
                        span: Span::synthetic(),
                    },
                ]),
            );
            new_items.push(Item::Always {
                event: hwdbg_rtl::EventControl::Edges(vec![hwdbg_rtl::Edge {
                    posedge: true,
                    signal: clock.clone(),
                }]),
                body,
                span: Span::synthetic(),
            });
        }
        let lines = generated_lines(&new_items);
        module.items.extend(new_items);
        Ok(StatInstrumented {
            module,
            events: events.to_vec(),
            generated_lines: lines,
        })
    }

    /// Reads the final counter values out of a finished simulation.
    pub fn counts(info: &StatInstrumented, sim: &Simulator) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for ev in &info.events {
            if let Ok(v) = sim.peek(&Self::counter_name(&ev.name)) {
                out.insert(ev.name.clone(), v.to_u64());
            }
        }
        out
    }

    /// Accumulates the total number of counted statistic events into the
    /// observability registry.
    pub fn observe(
        info: &StatInstrumented,
        sim: &Simulator,
        counters: &mut hwdbg_obs::SimCounters,
    ) {
        counters.stat_events += Self::counts(info, sim).values().sum::<u64>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwdbg_dataflow::{elaborate, NoBlackboxes};
    use hwdbg_rtl::parse_expr;
    use hwdbg_sim::{NoModels, SimConfig};

    const SRC: &str = "module m(input clk, input in_valid, output reg out_valid,
                               output reg [7:0] held);
        // A lossy stage: drops the input when already holding one.
        reg busy;
        always @(posedge clk) begin
            out_valid <= 1'b0;
            if (in_valid && !busy) begin
                busy <= 1'b1;
            end else if (busy) begin
                out_valid <= 1'b1;
                busy <= 1'b0;
            end
        end
    endmodule";

    #[test]
    fn counters_reveal_data_loss() {
        let d = elaborate(&hwdbg_rtl::parse(SRC).unwrap(), "m", &NoBlackboxes).unwrap();
        let events = vec![
            Event::new("in", parse_expr("in_valid").unwrap()),
            Event::new("out", parse_expr("out_valid").unwrap()),
        ];
        let info = StatisticsMonitor::instrument(&d, &events, None).unwrap();
        assert!(info.generated_lines >= 4);
        let d2 = hwdbg_dataflow::resolve(info.module.clone(), &NoBlackboxes).unwrap();
        let mut sim = hwdbg_sim::Simulator::new(d2, &NoModels, SimConfig::default()).unwrap();
        // Send 10 back-to-back inputs: every second one is dropped.
        sim.poke_u64("in_valid", 1).unwrap();
        for _ in 0..10 {
            sim.step("clk").unwrap();
        }
        sim.poke_u64("in_valid", 0).unwrap();
        for _ in 0..4 {
            sim.step("clk").unwrap();
        }
        let counts = StatisticsMonitor::counts(&info, &sim);
        assert_eq!(counts["in"], 10);
        assert!(
            counts["out"] < counts["in"],
            "statistics must expose the loss: {counts:?}"
        );
        // The change log is also present.
        assert!(sim
            .logs()
            .iter()
            .any(|l| l.message.starts_with("STATMON in ")));
    }

    #[test]
    fn unknown_event_signal_rejected() {
        let d = elaborate(&hwdbg_rtl::parse(SRC).unwrap(), "m", &NoBlackboxes).unwrap();
        let events = vec![Event::new("bad", parse_expr("ghost").unwrap())];
        assert!(matches!(
            StatisticsMonitor::instrument(&d, &events, None),
            Err(ToolError::UnknownSignal(_))
        ));
    }

    #[test]
    fn empty_events_rejected() {
        let d = elaborate(&hwdbg_rtl::parse(SRC).unwrap(), "m", &NoBlackboxes).unwrap();
        assert!(matches!(
            StatisticsMonitor::instrument(&d, &[], None),
            Err(ToolError::NothingToInstrument(_))
        ));
    }
}
