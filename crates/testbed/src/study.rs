//! The bug-study catalog: all 68 bugs of §3 as structured data, from which
//! Table 1 is regenerated.
//!
//! Each entry records the subclass and the design the bug was found in
//! (the study's target systems, §3); the per-subclass symptom profile is
//! the "Common Symptoms" column of Table 1.

use crate::{BugClass, Subclass, Symptom};

/// One studied bug (of the 68).
#[derive(Debug, Clone, Copy)]
pub struct StudiedBug {
    /// Classification.
    pub subclass: Subclass,
    /// The FPGA design/project the bug was found in.
    pub design: &'static str,
}

/// The symptom profile of a subclass (Table 1 "Common Symptoms").
pub fn common_symptoms(subclass: Subclass) -> &'static [Symptom] {
    use Subclass::*;
    use Symptom::*;
    match subclass {
        BufferOverflow => &[DataLoss],
        BitTruncation => &[IncorrectOutput, ExternalError],
        Misindexing => &[DataLoss, IncorrectOutput],
        EndiannessMismatch => &[IncorrectOutput],
        FailureToUpdate => &[DataLoss, IncorrectOutput, ExternalError],
        Deadlock => &[Stuck],
        ProducerConsumerMismatch => &[Stuck, DataLoss, IncorrectOutput],
        // Table 1 lists "Incorrect Output"; Table 2's C4 additionally
        // shows data loss (and §6.3 counts C4 among the loss bugs).
        SignalAsynchrony => &[IncorrectOutput, DataLoss],
        UseWithoutValid => &[IncorrectOutput],
        ProtocolViolation => &[Stuck, IncorrectOutput, ExternalError],
        ApiMisuse => &[IncorrectOutput],
        IncompleteImplementation => &[IncorrectOutput],
        ErroneousExpression => &[IncorrectOutput],
    }
}

/// The per-subclass bug counts of Table 1.
pub fn table1_counts() -> Vec<(Subclass, usize)> {
    use Subclass::*;
    vec![
        (BufferOverflow, 5),
        (BitTruncation, 12),
        (Misindexing, 5),
        (EndiannessMismatch, 1),
        (FailureToUpdate, 5),
        (Deadlock, 3),
        (ProducerConsumerMismatch, 3),
        (SignalAsynchrony, 10),
        (UseWithoutValid, 1),
        (ProtocolViolation, 3),
        (ApiMisuse, 3),
        (IncompleteImplementation, 7),
        (ErroneousExpression, 10),
    ]
}

/// All 68 studied bugs, attributed to the study's target systems.
pub fn catalog() -> Vec<StudiedBug> {
    use Subclass::*;
    // Target systems of §3: the HardCloud apps (SHA512, RSD, Grayscale),
    // Optimus, the ZipCPU designs (SDSPI, the two AXI endpoint demos, FFT),
    // the popular GitHub projects (WiFi controller, GPGPU, two RISC-V CPUs,
    // Bitcoin miner, two NICs, two HDL libraries), and the contributed FADD.
    // Which project each of the 48 non-testbed bugs came from is not
    // published; this attribution reconstructs a plausible assignment over
    // the study's designs while keeping Table 1's counts exact.
    let sources: &[(Subclass, &[&str])] = &[
        (BufferOverflow, &["RSD", "Grayscale", "Optimus", "NIC B", "NIC A"]),
        (
            BitTruncation,
            &[
                "SHA512", "FFT", "GPGPU", "RISC-V CPU A", "RISC-V CPU B", "WiFi",
                "HDL library A", "NIC A", "Bitcoin Miner", "Optimus", "SDSPI",
                "HDL library B",
            ],
        ),
        (
            Misindexing,
            &["FADD", "HDL library B", "GPGPU", "WiFi", "HDL library A"],
        ),
        (EndiannessMismatch, &["SDSPI"]),
        (
            FailureToUpdate,
            &["SHA512", "NIC B", "NIC B", "NIC B", "RISC-V CPU A"],
        ),
        (Deadlock, &["SDSPI", "GPGPU", "NIC A"]),
        (ProducerConsumerMismatch, &["Optimus", "NIC A", "WiFi"]),
        (
            SignalAsynchrony,
            &[
                "SDSPI", "HDL library B", "NIC A", "WiFi", "GPGPU", "RISC-V CPU B",
                "HDL library A", "HDL library B", "Bitcoin Miner", "Optimus",
            ],
        ),
        (UseWithoutValid, &["RISC-V CPU A"]),
        (ProtocolViolation, &["AXI-Lite Demo", "AXI-Stream Demo", "NIC A"]),
        (ApiMisuse, &["Grayscale", "WiFi", "HDL library A"]),
        (
            IncompleteImplementation,
            &["HDL library B", "GPGPU", "RISC-V CPU A", "RISC-V CPU B", "WiFi", "NIC A", "FFT"],
        ),
        (
            ErroneousExpression,
            &[
                "SDSPI", "SHA512", "GPGPU", "RISC-V CPU A", "RISC-V CPU B", "WiFi",
                "NIC A", "Bitcoin Miner", "HDL library A", "HDL library B",
            ],
        ),
    ];
    let mut out = Vec::new();
    for (subclass, designs) in sources {
        for d in *designs {
            out.push(StudiedBug {
                subclass: *subclass,
                design: d,
            });
        }
    }
    out
}

/// Total bugs per class (Table 1 aggregation).
pub fn class_totals() -> Vec<(BugClass, usize)> {
    let mut data = 0;
    let mut comm = 0;
    let mut sem = 0;
    for (sub, n) in table1_counts() {
        match sub.class() {
            BugClass::DataMisAccess => data += n,
            BugClass::Communication => comm += n,
            BugClass::Semantic => sem += n,
        }
    }
    vec![
        (BugClass::DataMisAccess, data),
        (BugClass::Communication, comm),
        (BugClass::Semantic, sem),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_68_bugs() {
        assert_eq!(catalog().len(), 68);
    }

    #[test]
    fn counts_match_catalog() {
        let cat = catalog();
        for (sub, n) in table1_counts() {
            let actual = cat.iter().filter(|b| b.subclass == sub).count();
            assert_eq!(actual, n, "{sub}");
        }
    }

    #[test]
    fn class_totals_sum_to_68() {
        let total: usize = class_totals().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 68);
        // 28 data mis-access, 17 communication, 23 semantic.
        let t = class_totals();
        assert_eq!(t[0].1, 28);
        assert_eq!(t[1].1, 17);
        assert_eq!(t[2].1, 23);
    }

    #[test]
    fn catalog_spans_the_studied_designs() {
        let designs: std::collections::BTreeSet<&str> =
            catalog().iter().map(|b| b.design).collect();
        // §3 studies 19 FPGA designs; our attribution covers the named ones.
        assert!(designs.len() >= 18, "{designs:?}");
    }

    #[test]
    fn every_subclass_has_symptoms() {
        for (sub, _) in table1_counts() {
            assert!(!common_symptoms(sub).is_empty());
        }
    }
}
