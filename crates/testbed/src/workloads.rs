//! Per-bug workloads: the "push-button" testbenches that exhibit each
//! bug's symptom on the buggy design and pass on the fixed design.
//!
//! A workload plays the role of the host software, the DMA engine, or the
//! AXI master/consumer around the design under test — including the
//! "external monitor" (FPGA shell / protocol checker) that produces the
//! `Ext.` symptom in Table 2.
//!
//! Per-cycle stimulus loops resolve their signal names once through
//! [`Simulator::stimulus_plan`] and poke through interned IDs
//! ([`Simulator::poke_id_u64`]), keeping the drive side of each workload
//! on the simulator's zero-allocation hot path.

use crate::{BugId, Outcome, Symptom};
use hwdbg_sim::{SimError, Simulator};

/// Runs the workload for `id` against a simulator of the (buggy or fixed)
/// design and reports the outcome.
///
/// # Errors
///
/// Propagates simulator errors (the workload treats watchdog timeouts as
/// the `Stuck` symptom, not as errors).
pub fn run(id: BugId, sim: &mut Simulator) -> Result<Outcome, SimError> {
    match id {
        BugId::D1 => d1_rsd(sim),
        BugId::D2 => d2_grayscale(sim),
        BugId::D3 => d3_optimus(sim),
        BugId::D4 => d4_frame_fifo(sim),
        BugId::D5 => d5_sha512(sim),
        BugId::D6 => d6_fft(sim),
        BugId::D7 => d7_fadd(sim),
        BugId::D8 => d8_switch(sim),
        BugId::D9 => d9_sdspi(sim),
        BugId::D10 => d10_sha512(sim),
        BugId::D11 => d11_frame_fifo(sim),
        BugId::D12 => d12_frame_fifo(sim),
        BugId::D13 => d13_frame_len(sim),
        BugId::C1 => c1_sdspi(sim),
        BugId::C2 => c2_optimus(sim),
        BugId::C3 => c3_sdspi(sim),
        BugId::C4 => c4_axis_fifo(sim),
        BugId::S1 => s1_axil(sim),
        BugId::S2 => s2_axis_demo(sim),
        BugId::S3 => s3_adapter(sim),
    }
}

/// The ground-truth (passing) workload used for LossCheck's
/// false-positive filtering (§4.5.3), for the bugs that have one.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_ground_truth(id: BugId, sim: &mut Simulator) -> Result<Outcome, SimError> {
    match id {
        BugId::D1 => d1_ground_truth(sim),
        BugId::D2 => d2_ground_truth(sim),
        BugId::D3 => d3_ground_truth(sim),
        BugId::D4 => d4_ground_truth(sim),
        BugId::D11 => d11_ground_truth(sim),
        BugId::C2 => c2_ground_truth(sim),
        BugId::C4 => c4_ground_truth(sim),
        other => run(other, sim),
    }
}

fn fail(symptom: Symptom, detail: impl Into<String>) -> Outcome {
    Outcome::Fail {
        symptom,
        detail: detail.into(),
    }
}

fn reset(sim: &mut Simulator) -> Result<(), SimError> {
    if sim.design().signals.contains_key("rst") {
        sim.poke_u64("rst", 1)?;
        sim.step("clk")?;
        sim.step("clk")?;
        sim.poke_u64("rst", 0)?;
    }
    Ok(())
}

// ---- D1: RSD buffer overflow -------------------------------------------

fn d1_send_block(sim: &mut Simulator, symbols: &[u64], corrupt_at: &[usize]) -> Result<(), SimError> {
    let plan = sim.stimulus_plan(&["din", "din_valid"])?;
    let (din, din_valid) = (plan.id(0), plan.id(1));
    for (i, &s) in symbols.iter().enumerate() {
        let corrupt = if corrupt_at.contains(&i) { 1 << 8 } else { 0 };
        sim.poke_id_u64(din, s | corrupt);
        sim.poke_id_u64(din_valid, 1);
        sim.step("clk")?;
    }
    sim.poke_id_u64(din_valid, 0);
    sim.step("clk")?; // flush the hold stage
    sim.step("clk")?;
    Ok(())
}

fn d1_read(sim: &mut Simulator, n: usize) -> Result<Vec<u64>, SimError> {
    let mut out = Vec::new();
    sim.poke_u64("rd_en", 1)?;
    for _ in 0..n {
        sim.step("clk")?;
        if sim.peek("dout_valid")?.to_bool() {
            out.push(sim.peek("dout")?.to_u64());
        }
    }
    sim.poke_u64("rd_en", 0)?;
    Ok(out)
}

fn d1_rsd(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    let symbols: Vec<u64> = (1..=12).collect();
    // One corrupt symbol mid-stream (intentionally discarded by the design).
    let mut stream = symbols.clone();
    stream.insert(4, 0xEE);
    d1_send_block(sim, &stream, &[4])?;
    if !sim.peek("block_done")?.to_bool() {
        return Ok(fail(Symptom::Stuck, "block never completed"));
    }
    let got = d1_read(sim, 12)?;
    if got != symbols {
        return Ok(fail(
            Symptom::DataLoss,
            format!("block readback mismatch: {got:?}"),
        ));
    }
    Ok(Outcome::Pass)
}

fn d1_ground_truth(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    // A partial block of 10 clean symbols: passes even on the buggy design.
    let symbols: Vec<u64> = (20..30).collect();
    d1_send_block(sim, &symbols, &[])?;
    let got = d1_read(sim, 10)?;
    if got != symbols {
        return Ok(fail(Symptom::DataLoss, format!("partial block mismatch: {got:?}")));
    }
    Ok(Outcome::Pass)
}

// ---- D2: Grayscale buffer overflow --------------------------------------

fn gray_of(pix: u64) -> u64 {
    let r = (pix >> 16) & 0xFF;
    let g = (pix >> 8) & 0xFF;
    let b = pix & 0xFF;
    ((r >> 2) + (g >> 1) + (b >> 2)) & 0xFF
}

fn d2_run(sim: &mut Simulator, n: usize, require_done: bool) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("start", 1)?;
    sim.step("clk")?;
    sim.poke_u64("start", 0)?;
    let pixels: Vec<u64> = (0..n as u64).map(|i| (i << 16) | ((i * 3) << 8) | ((i * 7) % 256)).collect();
    let plan = sim.stimulus_plan(&["pix_in", "pix_in_valid", "host_rd"])?;
    let (pix_in, pix_in_valid, host_rd) = (plan.id(0), plan.id(1), plan.id(2));
    let mut got = Vec::new();
    for &p in &pixels {
        sim.poke_id_u64(pix_in, p);
        sim.poke_id_u64(pix_in_valid, 1);
        sim.step("clk")?;
        sim.poke_id_u64(pix_in_valid, 0);
        sim.poke_id_u64(host_rd, 1);
        sim.step("clk")?;
        sim.poke_id_u64(host_rd, 0);
        if sim.peek("pix_out_valid")?.to_bool() {
            got.push(sim.peek("pix_out")?.to_u64());
        }
        sim.step("clk")?;
        if sim.peek("pix_out_valid")?.to_bool() {
            got.push(sim.peek("pix_out")?.to_u64());
        }
    }
    // Drain the remainder.
    for _ in 0..4 * n {
        if got.len() >= n {
            break;
        }
        sim.poke_id_u64(host_rd, 1);
        sim.step("clk")?;
        sim.poke_id_u64(host_rd, 0);
        if sim.peek("pix_out_valid")?.to_bool() {
            got.push(sim.peek("pix_out")?.to_u64());
        }
        sim.step("clk")?;
        if sim.peek("pix_out_valid")?.to_bool() {
            got.push(sim.peek("pix_out")?.to_u64());
        }
    }
    let expected: Vec<u64> = pixels.iter().map(|&p| gray_of(p)).collect();
    if got.len() < n {
        let rd = sim.peek("rd_state_dbg")?.to_u64();
        let wr = sim.peek("wr_state_dbg")?.to_u64();
        return Ok(fail(
            Symptom::Stuck,
            format!(
                "accelerator hung: {} of {} pixels returned (read FSM state {rd}, write FSM state {wr})",
                got.len(),
                n
            ),
        ));
    }
    if require_done && !sim.peek("done")?.to_bool() {
        return Ok(fail(Symptom::Stuck, "done never asserted"));
    }
    if got != expected {
        return Ok(fail(Symptom::IncorrectOutput, format!("gray mismatch: {got:?}")));
    }
    Ok(Outcome::Pass)
}

fn d2_grayscale(sim: &mut Simulator) -> Result<Outcome, SimError> {
    d2_run(sim, 24, true)
}

fn d2_ground_truth(sim: &mut Simulator) -> Result<Outcome, SimError> {
    // 11 pixels stay below the 12-entry line buffer: passes on the buggy
    // design and exercises the intentional `out_hold` prefetch overwrites.
    d2_run(sim, 11, false)
}

// ---- D3: Optimus mailbox overflow ---------------------------------------

fn d3_optimus(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    let plan = sim.stimulus_plan(&["vm_id", "offset", "wdata", "wr_valid", "rd_valid"])?;
    let (vm_id, offset, wdata) = (plan.id(0), plan.id(1), plan.id(2));
    let (wr_valid, rd_valid) = (plan.id(3), plan.id(4));
    let mut expected = Vec::new();
    for vm in 0..2u64 {
        for off in 0..6u64 {
            let val = 0x100 * (vm + 1) + off;
            sim.poke_id_u64(vm_id, vm);
            sim.poke_id_u64(offset, off);
            sim.poke_id_u64(wdata, val);
            sim.poke_id_u64(wr_valid, 1);
            sim.step("clk")?;
            sim.poke_id_u64(wr_valid, 0);
            expected.push(val);
        }
    }
    let mut got = Vec::new();
    for vm in 0..2u64 {
        for off in 0..6u64 {
            sim.poke_id_u64(vm_id, vm);
            sim.poke_id_u64(offset, off);
            sim.poke_id_u64(rd_valid, 1);
            sim.step("clk")?;
            sim.poke_id_u64(rd_valid, 0);
            if sim.peek("rdata_valid")?.to_bool() {
                got.push(sim.peek("rdata")?.to_u64());
            } else {
                return Ok(fail(Symptom::ExternalError, "shell: MMIO read timed out"));
            }
        }
    }
    if got != expected {
        return Ok(fail(
            Symptom::DataLoss,
            format!("vm mailboxes corrupted: got {got:x?}"),
        ));
    }
    Ok(Outcome::Pass)
}

fn d3_ground_truth(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    // VM0 only; includes a legitimate slot update (write twice, read once),
    // which is an *intentional* overwrite at `mbox`.
    sim.poke_u64("vm_id", 0)?;
    for (off, val) in [(0u64, 0xA0u64), (0, 0xA1), (1, 0xB0)] {
        sim.poke_u64("offset", off)?;
        sim.poke_u64("wdata", val)?;
        sim.poke_u64("wr_valid", 1)?;
        sim.step("clk")?;
        sim.poke_u64("wr_valid", 0)?;
    }
    for (off, want) in [(0u64, 0xA1u64), (1, 0xB0)] {
        sim.poke_u64("offset", off)?;
        sim.poke_u64("rd_valid", 1)?;
        sim.step("clk")?;
        sim.poke_u64("rd_valid", 0)?;
        if sim.peek("rdata")?.to_u64() != want {
            return Ok(fail(Symptom::IncorrectOutput, "vm0 slot readback wrong"));
        }
    }
    Ok(Outcome::Pass)
}

// ---- D4: frame FIFO off-by-one full check --------------------------------

fn d4_frame_fifo(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("m_ready", 0)?;
    let plan = sim.stimulus_plan(&["s_data", "s_valid"])?;
    let (s_data, s_valid) = (plan.id(0), plan.id(1));
    let mut accepted = Vec::new();
    for w in 1..=17u64 {
        sim.poke_id_u64(s_data, w);
        sim.poke_id_u64(s_valid, 1);
        sim.settle()?;
        let full = sim.peek("full")?.to_bool();
        sim.step("clk")?;
        if !full {
            accepted.push(w);
        }
    }
    sim.poke_id_u64(s_valid, 0);
    sim.poke_u64("m_ready", 1)?;
    let mut got = Vec::new();
    for _ in 0..40 {
        sim.settle()?;
        if sim.peek("m_valid")?.to_bool() {
            got.push(sim.peek("m_data")?.to_u64());
        }
        sim.step("clk")?;
        if got.len() >= accepted.len() {
            break;
        }
    }
    if got != accepted {
        return Ok(fail(
            Symptom::DataLoss,
            format!("accepted {accepted:?} but drained {got:?}"),
        ));
    }
    Ok(Outcome::Pass)
}

fn d4_ground_truth(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    // Light load: 8 words in, 8 out — passes on the buggy design.
    sim.poke_u64("m_ready", 0)?;
    for w in 1..=8u64 {
        sim.poke_u64("s_data", w)?;
        sim.poke_u64("s_valid", 1)?;
        sim.step("clk")?;
    }
    sim.poke_u64("s_valid", 0)?;
    sim.poke_u64("m_ready", 1)?;
    let mut got = Vec::new();
    for _ in 0..20 {
        sim.settle()?;
        if sim.peek("m_valid")?.to_bool() {
            got.push(sim.peek("m_data")?.to_u64());
        }
        sim.step("clk")?;
    }
    if got != (1..=8).collect::<Vec<_>>() {
        return Ok(fail(Symptom::DataLoss, format!("drained {got:?}")));
    }
    Ok(Outcome::Pass)
}

// ---- D5/D10: SHA512 -----------------------------------------------------

/// Reference model of the fixed SHA-512-style round function.
fn sha_model(words: &[u64], rounds: usize) -> u64 {
    let mut a = 0x6a09e667f3bcc908u64;
    let mut b = 0xbb67ae8584caa73bu64;
    for (i, &w) in words.iter().enumerate().take(rounds) {
        let old_a = a;
        let old_b = b;
        a = old_a.wrapping_add(w ^ old_b);
        b = old_b ^ (old_a >> 7);
        if i == rounds - 1 {
            // digest computed from pre-edge values on the final round
            return old_a.wrapping_add(w ^ old_b) ^ (old_b ^ (old_a >> 7));
        }
    }
    a ^ b
}

fn d5_sha512(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    let words: Vec<u64> = (0..16).map(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i * 3)).collect();
    for &w in &words {
        sim.poke("w", hwdbg_bits::Bits::from_u64(64, w))?;
        sim.poke_u64("w_valid", 1)?;
        sim.step("clk")?;
    }
    sim.poke_u64("w_valid", 0)?;
    sim.step("clk")?;
    if !sim.peek("done")?.to_bool() {
        return Ok(fail(Symptom::Stuck, "digest never completed"));
    }
    let got = sim.peek("digest")?.to_u64();
    let expect = sha_model(&words, 16);
    if got != expect {
        return Ok(fail(
            Symptom::IncorrectOutput,
            format!("digest {got:016x} != {expect:016x}"),
        ));
    }
    Ok(Outcome::Pass)
}

fn d10_sha512(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    for msg in 0..2u64 {
        sim.poke_u64("start", 1)?;
        sim.step("clk")?;
        sim.poke_u64("start", 0)?;
        let words: Vec<u64> = (0..8).map(|i| ((msg + 1) * 0x1111_2222_3333_4444u64) ^ i).collect();
        for &w in &words {
            sim.poke("w", hwdbg_bits::Bits::from_u64(64, w))?;
            sim.poke_u64("w_valid", 1)?;
            sim.step("clk")?;
        }
        sim.poke_u64("w_valid", 0)?;
        sim.step("clk")?;
        let got = sim.peek("digest")?.to_u64();
        let mut a = 0x6a09e667f3bcc908u64;
        let mut b = 0xbb67ae8584caa73bu64;
        let mut expect = 0;
        for &w in &words {
            let (oa, ob) = (a, b);
            a = oa.wrapping_add(w ^ ob);
            b = ob ^ (oa >> 7);
            expect = a ^ b; // digest mixes the post-round values
        }
        if got != expect {
            return Ok(fail(
                Symptom::IncorrectOutput,
                format!("message {msg} digest {got:016x} != {expect:016x}"),
            ));
        }
    }
    Ok(Outcome::Pass)
}

// ---- D6: FFT truncation --------------------------------------------------

fn d6_fft(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    let vectors = [(0x0100u64, 0x1234u64, 0x56u64), (0x0040, 0x2000, 0x33), (0x7fff, 0x0fff, 0x11)];
    for (ar, br, tw) in vectors {
        sim.poke_u64("ar", ar)?;
        sim.poke_u64("br", br)?;
        sim.poke_u64("twiddle", tw)?;
        sim.poke_u64("in_valid", 1)?;
        sim.step("clk")?;
        sim.poke_u64("in_valid", 0)?;
        sim.step("clk")?;
        if !sim.peek("out_valid")?.to_bool() {
            return Ok(fail(Symptom::Stuck, "butterfly produced no output"));
        }
        let got = sim.peek("yr")?.to_u64();
        let prod = br * tw;
        let expect = (ar + ((prod >> 4) & 0xFFFF)) & 0xFFFF;
        if got != expect {
            return Ok(fail(
                Symptom::IncorrectOutput,
                format!("yr {got:04x} != {expect:04x} for prod {prod:06x}"),
            ));
        }
        sim.step("clk")?;
    }
    Ok(Outcome::Pass)
}

// ---- D7: FADD misindexing -------------------------------------------------

fn d7_fadd(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    let vectors: [(f32, f32); 4] = [(1.5, 2.25), (3.0, 3.0), (4.5, 0.5), (10.0, 6.0)];
    for (a, b) in vectors {
        sim.poke_u64("a", f32::to_bits(a) as u64)?;
        sim.poke_u64("b", f32::to_bits(b) as u64)?;
        sim.poke_u64("in_valid", 1)?;
        sim.step("clk")?;
        sim.poke_u64("in_valid", 0)?;
        sim.step("clk")?;
        if !sim.peek("out_valid")?.to_bool() {
            return Ok(fail(Symptom::Stuck, "adder produced no output"));
        }
        let got = f32::from_bits(sim.peek("sum")?.to_u64() as u32);
        if got != a + b {
            return Ok(fail(
                Symptom::IncorrectOutput,
                format!("{a} + {b} = {got}, expected {}", a + b),
            ));
        }
        sim.step("clk")?;
    }
    Ok(Outcome::Pass)
}

// ---- D8: stream switch misindexing ---------------------------------------

fn d8_switch(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    // (header, expected port): bit 7 selects, bit 5 set as a decoy.
    let frames = [(0x80u64, 1u64), (0x20, 0), (0xA0, 1), (0x00, 0)];
    for (hdr, port) in frames {
        let words = [hdr, 0x11, 0x12];
        for (i, &w) in words.iter().enumerate() {
            sim.poke_u64("s_data", w)?;
            sim.poke_u64("s_valid", 1)?;
            sim.poke_u64("s_last", (i == words.len() - 1) as u64)?;
            sim.step("clk")?;
            let m0 = sim.peek("m0_valid")?.to_bool();
            let m1 = sim.peek("m1_valid")?.to_bool();
            let went = if m1 { 1 } else if m0 { 0 } else { 2 };
            if went != port {
                return Ok(fail(
                    Symptom::IncorrectOutput,
                    format!("frame with header {hdr:02x} routed to port {went}, expected {port}"),
                ));
            }
        }
        sim.poke_u64("s_valid", 0)?;
        sim.poke_u64("s_last", 0)?;
        sim.step("clk")?;
    }
    Ok(Outcome::Pass)
}

// ---- D9: SDSPI endianness --------------------------------------------------

fn d9_sdspi(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    let resp: u64 = 0xA55A;
    sim.poke_u64("go", 1)?;
    sim.step("clk")?;
    sim.poke_u64("go", 0)?;
    for bit in (0..16).rev() {
        sim.poke_u64("miso", (resp >> bit) & 1)?;
        sim.step("clk")?;
    }
    sim.step("clk")?; // DONE state
    if !sim.peek("resp_valid")?.to_bool() {
        return Ok(fail(Symptom::Stuck, "no response"));
    }
    let got = sim.peek("resp")?.to_u64();
    if got != resp {
        return Ok(fail(
            Symptom::IncorrectOutput,
            format!("response {got:04x} != {resp:04x}"),
        ));
    }
    Ok(Outcome::Pass)
}

// ---- D11/D12: frame FIFO failure-to-update --------------------------------

fn d11_push_frame(sim: &mut Simulator, base: u64, len: usize) -> Result<(), SimError> {
    let plan = sim.stimulus_plan(&["s_data", "s_valid", "s_last"])?;
    let (s_data, s_valid, s_last) = (plan.id(0), plan.id(1), plan.id(2));
    for i in 0..len {
        sim.poke_id_u64(s_data, base + i as u64);
        sim.poke_id_u64(s_valid, 1);
        sim.poke_id_u64(s_last, (i == len - 1) as u64);
        sim.step("clk")?;
    }
    sim.poke_id_u64(s_valid, 0);
    sim.poke_id_u64(s_last, 0);
    sim.step("clk")?; // flush in_reg
    Ok(())
}

fn d11_drain(sim: &mut Simulator, max: usize) -> Result<Vec<u64>, SimError> {
    let mut got = Vec::new();
    sim.poke_u64("m_ready", 1)?;
    for _ in 0..max {
        sim.settle()?;
        if sim.peek("m_valid")?.to_bool() {
            got.push(sim.peek("m_data")?.to_u64());
        }
        sim.step("clk")?;
    }
    sim.poke_u64("m_ready", 0)?;
    Ok(got)
}

fn d11_frame_fifo(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("m_ready", 0)?;
    // Five 4-word frames: the fifth overflows mid-frame and is dropped
    // (intentional), leaving `drop` latched in the buggy design.
    for f in 0..5u64 {
        d11_push_frame(sim, 0x10 * (f + 1), 4)?;
    }
    let first = d11_drain(sim, 24)?;
    if first.len() != 16 {
        return Ok(fail(
            Symptom::DataLoss,
            format!("expected 16 committed words, drained {}", first.len()),
        ));
    }
    // FIFO now empty: two more frames must pass through.
    d11_push_frame(sim, 0xA0, 4)?;
    d11_push_frame(sim, 0xB0, 4)?;
    let second = d11_drain(sim, 24)?;
    let expect: Vec<u64> = (0..4).map(|i| 0xA0 + i).chain((0..4).map(|i| 0xB0 + i)).collect();
    if second != expect {
        return Ok(fail(
            Symptom::DataLoss,
            format!("post-drop frames lost: drained {second:x?}"),
        ));
    }
    Ok(Outcome::Pass)
}

fn d11_ground_truth(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("m_ready", 0)?;
    // Overfill to exercise the legitimate drop-on-full path, then stop.
    for f in 0..5u64 {
        d11_push_frame(sim, 0x10 * (f + 1), 4)?;
    }
    let got = d11_drain(sim, 24)?;
    if got.len() != 16 {
        return Ok(fail(Symptom::DataLoss, "committed frames corrupted"));
    }
    Ok(Outcome::Pass)
}

fn d12_frame_fifo(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("m_ready", 1)?;
    let plan = sim.stimulus_plan(&["s_data", "s_valid", "s_last"])?;
    let (s_data, s_valid, s_last) = (plan.id(0), plan.id(1), plan.id(2));
    let mut got = Vec::new();
    for f in 0..2u64 {
        for i in 0..4u64 {
            sim.poke_id_u64(s_data, 0x10 * (f + 1) + i);
            sim.poke_id_u64(s_valid, 1);
            sim.poke_id_u64(s_last, (i == 3) as u64);
            sim.step("clk")?;
            if sim.peek("m_valid")?.to_bool() {
                got.push((sim.peek("m_data")?.to_u64(), sim.peek("m_last")?.to_bool()));
            }
        }
    }
    sim.poke_id_u64(s_valid, 0);
    sim.poke_id_u64(s_last, 0);
    for _ in 0..12 {
        sim.step("clk")?;
        if sim.peek("m_valid")?.to_bool() {
            got.push((sim.peek("m_data")?.to_u64(), sim.peek("m_last")?.to_bool()));
        }
    }
    let lasts: Vec<bool> = got.iter().map(|(_, l)| *l).collect();
    let expect: Vec<bool> = (0..got.len()).map(|i| i % 4 == 3).collect();
    if lasts != expect {
        return Ok(fail(
            Symptom::IncorrectOutput,
            format!("frame boundaries wrong: {lasts:?}"),
        ));
    }
    Ok(Outcome::Pass)
}

// ---- D13: frame length ------------------------------------------------------

fn d13_frame_len(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    let plan = sim.stimulus_plan(&["s_data", "s_valid", "s_sop", "s_eop"])?;
    let (s_data, s_valid) = (plan.id(0), plan.id(1));
    let (s_sop, s_eop) = (plan.id(2), plan.id(3));
    let mut got = Vec::new();
    for len in [3u64, 2, 5] {
        for i in 0..len {
            sim.poke_id_u64(s_data, i);
            sim.poke_id_u64(s_valid, 1);
            sim.poke_id_u64(s_sop, (i == 0) as u64);
            sim.poke_id_u64(s_eop, (i == len - 1) as u64);
            sim.step("clk")?;
            if sim.peek("len_valid")?.to_bool() {
                got.push(sim.peek("len")?.to_u64());
            }
        }
        sim.poke_id_u64(s_valid, 0);
        sim.poke_id_u64(s_sop, 0);
        sim.poke_id_u64(s_eop, 0);
        sim.step("clk")?;
        if sim.peek("len_valid")?.to_bool() {
            got.push(sim.peek("len")?.to_u64());
        }
    }
    if got != vec![3, 2, 5] {
        return Ok(fail(
            Symptom::IncorrectOutput,
            format!("frame lengths {got:?}, expected [3, 2, 5]"),
        ));
    }
    Ok(Outcome::Pass)
}

// ---- C1: SDSPI deadlock ------------------------------------------------------

fn c1_sdspi(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("go", 1)?;
    sim.step("clk")?;
    sim.poke_u64("go", 0)?;
    match sim.run_until("clk", 100, |s| {
        s.peek("done").is_ok_and(|v| v.to_bool())
    }) {
        Ok(_) => Ok(Outcome::Pass),
        Err(SimError::Watchdog { cycles }) => {
            let st = sim.peek("state_dbg")?.to_u64();
            Ok(fail(
                Symptom::Stuck,
                format!("transfer never completed after {cycles} cycles (FSM state {st})"),
            ))
        }
        Err(e) => Err(e),
    }
}

// ---- C2: Optimus producer-consumer ------------------------------------------

fn c2_optimus(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("resp_ready", 1)?;
    let plan = sim.stimulus_plan(&["vm0_valid", "vm0_resp", "vm1_valid", "vm1_resp"])?;
    let (vm0_valid, vm0_resp) = (plan.id(0), plan.id(1));
    let (vm1_valid, vm1_resp) = (plan.id(2), plan.id(3));
    let vm1_at = [5u64, 15];
    for cycle in 0..30u64 {
        sim.settle()?;
        let stall = sim.peek("vm0_stall")?.to_bool();
        sim.poke_id_u64(vm0_valid, (!stall) as u64);
        sim.poke_id_u64(vm0_resp, 0x100 + cycle);
        let vm1 = vm1_at.contains(&cycle);
        sim.poke_id_u64(vm1_valid, vm1 as u64);
        if vm1 {
            sim.poke_id_u64(vm1_resp, 0xAA00 + cycle);
        }
        sim.step("clk")?;
    }
    sim.poke_id_u64(vm0_valid, 0);
    sim.poke_id_u64(vm1_valid, 0);
    for _ in 0..6 {
        sim.step("clk")?;
    }
    let vm1_sent = sim.peek("vm1_sent")?.to_u64();
    if vm1_sent != vm1_at.len() as u64 {
        return Ok(fail(
            Symptom::DataLoss,
            format!(
                "guest 1 received {vm1_sent} of {} responses (vm0_sent={})",
                vm1_at.len(),
                sim.peek("vm0_sent")?.to_u64()
            ),
        ));
    }
    Ok(Outcome::Pass)
}

fn c2_ground_truth(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("resp_ready", 1)?;
    // VM0-only light traffic: passes on the buggy design.
    for cycle in 0..10u64 {
        sim.poke_u64("vm0_valid", (cycle % 2 == 0) as u64)?;
        sim.poke_u64("vm0_resp", 0x100 + cycle)?;
        sim.step("clk")?;
    }
    sim.poke_u64("vm0_valid", 0)?;
    for _ in 0..4 {
        sim.step("clk")?;
    }
    if sim.peek("vm0_sent")?.to_u64() != 5 {
        return Ok(fail(Symptom::DataLoss, "vm0 responses lost"));
    }
    Ok(Outcome::Pass)
}

// ---- C3: SDSPI asynchrony -----------------------------------------------------

fn c3_sdspi(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    for data in [5u64, 9] {
        sim.poke_u64("input_data", data)?;
        sim.poke_u64("request", 1)?;
        sim.step("clk")?;
        sim.poke_u64("request", 0)?;
        // Sample the response at the first cycle valid is seen.
        let mut sampled = None;
        for _ in 0..6 {
            if sim.peek("final_response_valid")?.to_bool() {
                sampled = Some(sim.peek("final_response")?.to_u64());
                break;
            }
            sim.step("clk")?;
        }
        let Some(got) = sampled else {
            return Ok(fail(Symptom::Stuck, "response valid never asserted"));
        };
        if got != data + 1 {
            return Ok(fail(
                Symptom::IncorrectOutput,
                format!("sampled response {got} for request {data}, expected {}", data + 1),
            ));
        }
        for _ in 0..3 {
            sim.step("clk")?;
        }
    }
    Ok(Outcome::Pass)
}

// ---- C4: AXI-Stream FIFO skid overwrite ----------------------------------------

fn c4_run(sim: &mut Simulator, pushes: usize) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("m_ready", 0)?;
    sim.step("clk")?; // let s_ready_r rise
    let plan = sim.stimulus_plan(&["s_data", "s_valid"])?;
    let (s_data, s_valid) = (plan.id(0), plan.id(1));
    let mut accepted = Vec::new();
    let mut w = 1u64;
    for _ in 0..pushes {
        sim.settle()?;
        if sim.peek("s_ready")?.to_bool() {
            sim.poke_id_u64(s_data, w);
            sim.poke_id_u64(s_valid, 1);
            accepted.push(w);
            w += 1;
        } else {
            sim.poke_id_u64(s_valid, 0);
        }
        sim.step("clk")?;
    }
    sim.poke_id_u64(s_valid, 0);
    sim.step("clk")?;
    sim.step("clk")?;
    sim.poke_u64("m_ready", 1)?;
    let mut got = Vec::new();
    for _ in 0..pushes + 8 {
        sim.step("clk")?;
        if sim.peek("m_valid")?.to_bool() {
            got.push(sim.peek("m_data")?.to_u64());
        }
    }
    if got != accepted {
        return Ok(fail(
            Symptom::DataLoss,
            format!("accepted {} words, delivered {} ({got:x?})", accepted.len(), got.len()),
        ));
    }
    Ok(Outcome::Pass)
}

fn c4_axis_fifo(sim: &mut Simulator) -> Result<Outcome, SimError> {
    c4_run(sim, 24)
}

fn c4_ground_truth(sim: &mut Simulator) -> Result<Outcome, SimError> {
    // Light load (never fills the RAM): passes on the buggy design.
    c4_run(sim, 8)
}

// ---- S1: AXI-Lite protocol violation --------------------------------------------

fn s1_axil(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    // A legal master: presents AW and W, raises BREADY only after BVALID.
    sim.poke_u64("awvalid", 1)?;
    sim.poke_u64("awaddr", 3)?;
    sim.poke_u64("wvalid", 1)?;
    sim.poke_u64("wdata", 0xCAFE_F00D)?;
    sim.poke_u64("bready", 0)?;
    let mut stalled = 0;
    for _ in 0..20 {
        sim.settle()?;
        if sim.peek("bvalid")?.to_bool() {
            sim.poke_u64("bready", 1)?;
            sim.step("clk")?;
            break;
        }
        stalled += 1;
        sim.step("clk")?;
    }
    if stalled >= 20 {
        return Ok(fail(
            Symptom::ExternalError,
            "protocol monitor: BVALID depends on BREADY (write channel stalled)",
        ));
    }
    sim.poke_u64("awvalid", 0)?;
    sim.poke_u64("wvalid", 0)?;
    sim.poke_u64("bready", 0)?;
    sim.step("clk")?;
    // Read back.
    sim.poke_u64("arvalid", 1)?;
    sim.poke_u64("araddr", 3)?;
    sim.step("clk")?;
    sim.poke_u64("arvalid", 0)?;
    if !sim.peek("rvalid")?.to_bool() {
        return Ok(fail(Symptom::Stuck, "read never completed"));
    }
    if sim.peek("rdata")?.to_u64() != 0xCAFE_F00D {
        return Ok(fail(Symptom::IncorrectOutput, "readback mismatch"));
    }
    Ok(Outcome::Pass)
}

// ---- S2: AXI-Stream protocol violation -------------------------------------------

fn s2_axis_demo(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    sim.poke_u64("start", 1)?;
    sim.poke_u64("tready", 1)?;
    sim.step("clk")?;
    sim.poke_u64("start", 0)?;
    let tready = sim.stimulus_plan(&["tready"])?.id(0);
    let mut got = Vec::new();
    let mut violation = None;
    let mut prev_stalled: Option<u64> = None;
    for cycle in 0..40u64 {
        // Backpressure during cycles 3..=5.
        let ready = !(3..=5).contains(&cycle);
        sim.poke_id_u64(tready, ready as u64);
        sim.settle()?;
        let tvalid = sim.peek("tvalid")?.to_bool();
        let tdata = sim.peek("tdata")?.to_u64();
        if tvalid && ready {
            got.push(tdata);
        }
        // Protocol monitor: while TVALID && !TREADY, TDATA must hold.
        if let Some(stalled_data) = prev_stalled {
            if tvalid && stalled_data != tdata {
                violation = Some(format!(
                    "protocol monitor: TDATA changed {stalled_data}->{tdata} during backpressure"
                ));
            }
            if !tvalid {
                violation =
                    Some("protocol monitor: TVALID dropped without handshake".to_owned());
            }
        }
        prev_stalled = (tvalid && !ready).then_some(tdata);
        sim.step("clk")?;
        if got.len() >= 8 {
            break;
        }
    }
    if let Some(v) = violation {
        return Ok(fail(Symptom::ExternalError, v));
    }
    let expect: Vec<u64> = (1..=8).collect();
    if got != expect {
        return Ok(fail(Symptom::DataLoss, format!("received {got:?}")));
    }
    Ok(Outcome::Pass)
}

// ---- S3: width adapter incomplete implementation ----------------------------------

fn s3_adapter(sim: &mut Simulator) -> Result<Outcome, SimError> {
    reset(sim)?;
    // Frame of 3 bytes: 0x11 0x22 0x33 → beats (0x2211, keep 11),
    // (0x0033, keep 01, last).
    let beats = [(0x2211u64, 0b11u64, 0u64), (0x0033, 0b01, 1)];
    let mut got = Vec::new();
    for (data, keep, last) in beats {
        sim.poke_u64("s_data", data)?;
        sim.poke_u64("s_keep", keep)?;
        sim.poke_u64("s_last", last)?;
        sim.poke_u64("s_valid", 1)?;
        sim.step("clk")?;
        if sim.peek("m_valid")?.to_bool() {
            got.push((sim.peek("m_data")?.to_u64(), sim.peek("m_last")?.to_bool()));
        }
        sim.poke_u64("s_valid", 0)?;
        sim.step("clk")?;
        if sim.peek("m_valid")?.to_bool() {
            got.push((sim.peek("m_data")?.to_u64(), sim.peek("m_last")?.to_bool()));
        }
    }
    for _ in 0..4 {
        sim.step("clk")?;
        if sim.peek("m_valid")?.to_bool() {
            got.push((sim.peek("m_data")?.to_u64(), sim.peek("m_last")?.to_bool()));
        }
    }
    let expect = vec![(0x11u64, false), (0x22, false), (0x33, true)];
    if got != expect {
        return Ok(fail(
            Symptom::IncorrectOutput,
            format!("odd-length frame mangled: {got:x?}"),
        ));
    }
    Ok(Outcome::Pass)
}
