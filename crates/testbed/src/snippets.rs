//! The paper's explanatory code snippets (§3.2–§3.4), as runnable designs.
//!
//! The artifact "includes a simplified code snippet for each bug for
//! explanation purposes"; this module carries one executable snippet per
//! subclass — including the three subclasses (Use-Without-Valid, API
//! Misuse, Erroneous Expression) that have no Table 2 testbed entry — each
//! paired with a demonstration that exhibits the symptom and, where the
//! paper gives one, the fix.

use crate::{simulator, Subclass};
use hwdbg_dataflow::elaborate;
use hwdbg_ip::StdIpLib;
use hwdbg_sim::{SimError, Simulator};

/// A runnable snippet: the buggy code from the paper plus its fix.
#[derive(Debug, Clone)]
pub struct Snippet {
    /// The subclass it illustrates.
    pub subclass: Subclass,
    /// Section of the paper the snippet comes from.
    pub section: &'static str,
    /// Buggy Verilog.
    pub buggy: &'static str,
    /// Fixed Verilog (same module name and ports).
    pub fixed: &'static str,
}

/// All thirteen subclass snippets.
pub fn all() -> Vec<Snippet> {
    use Subclass::*;
    vec![
        Snippet {
            subclass: BufferOverflow,
            section: "3.2.1",
            // mybuf[offset] <= value with offset >= N.
            buggy: "module snip(input clk, input [3:0] offset, input value, output [9:0] view);
                reg mybuf [0:9];
                assign view = {mybuf[9], mybuf[8], mybuf[7], mybuf[6], mybuf[5],
                               mybuf[4], mybuf[3], mybuf[2], mybuf[1], mybuf[0]};
                always @(posedge clk) mybuf[offset] <= value;
            endmodule",
            fixed: "module snip(input clk, input [3:0] offset, input value, output [15:0] view);
                reg mybuf [0:15];
                assign view = {mybuf[15], mybuf[14], mybuf[13], mybuf[12], mybuf[11],
                               mybuf[10], mybuf[9], mybuf[8], mybuf[7], mybuf[6],
                               mybuf[5], mybuf[4], mybuf[3], mybuf[2], mybuf[1], mybuf[0]};
                always @(posedge clk) mybuf[offset] <= value;
            endmodule",
        },
        Snippet {
            subclass: BitTruncation,
            section: "3.2.2",
            // left <= 42'(right) >> 6 — bits [47:42] truncated.
            buggy: "module snip(input clk, input [63:0] right, output reg [41:0] left);
                always @(posedge clk) left <= 42'(right) >> 6;
            endmodule",
            fixed: "module snip(input clk, input [63:0] right, output reg [41:0] left);
                always @(posedge clk) left <= 42'(right >> 6);
            endmodule",
        },
        Snippet {
            subclass: Misindexing,
            section: "3.2.3",
            // IEEE-754: fraction is [22:0], not [23:0].
            buggy: "module snip(input [31:0] f, output [23:0] frac, output [7:0] expo);
                assign frac = f[23:0];
                assign expo = f[30:23];
            endmodule",
            fixed: "module snip(input [31:0] f, output [23:0] frac, output [7:0] expo);
                assign frac = {1'b0, f[22:0]};
                assign expo = f[30:23];
            endmodule",
        },
        Snippet {
            subclass: EndiannessMismatch,
            section: "3.2.4",
            buggy: "module snip(input clk, input [7:0] least_significant_byte,
                               input [7:0] most_significant_byte, output reg [15:0] data);
                always @(posedge clk) begin
                    data[7:0] <= least_significant_byte;
                    data[15:8] <= most_significant_byte;
                end
            endmodule",
            fixed: "module snip(input clk, input [7:0] least_significant_byte,
                               input [7:0] most_significant_byte, output reg [15:0] data);
                always @(posedge clk) begin
                    data[7:0] <= most_significant_byte;
                    data[15:8] <= least_significant_byte;
                end
            endmodule",
        },
        Snippet {
            subclass: FailureToUpdate,
            section: "3.2.5",
            buggy: "module snip(input clk, input reset, input input_valid, input output_ready,
                               output reg [7:0] input_counter, output reg [7:0] output_counter);
                always @(posedge clk) begin
                    if (input_valid) input_counter <= input_counter + 8'd1;
                    if (output_ready) output_counter <= output_counter + 8'd1;
                    if (reset) input_counter <= 8'd0;
                end
            endmodule",
            fixed: "module snip(input clk, input reset, input input_valid, input output_ready,
                               output reg [7:0] input_counter, output reg [7:0] output_counter);
                always @(posedge clk) begin
                    if (input_valid) input_counter <= input_counter + 8'd1;
                    if (output_ready) output_counter <= output_counter + 8'd1;
                    if (reset) begin
                        input_counter <= 8'd0;
                        output_counter <= 8'd0;
                    end
                end
            endmodule",
        },
        Snippet {
            subclass: Deadlock,
            section: "3.3.1",
            // if (a) b <= 1; if (b) a <= 1; if (a) out <= result;
            buggy: "module snip(input clk, input [7:0] result, output reg [7:0] out);
                reg a;
                reg b;
                always @(posedge clk) begin
                    if (a) b <= 1'b1;
                    if (b) a <= 1'b1;
                    if (a) out <= result;
                end
            endmodule",
            fixed: "module snip(input clk, input [7:0] result, output reg [7:0] out);
                reg a;
                reg b;
                reg seeded;
                always @(posedge clk) begin
                    if (!seeded) begin
                        a <= 1'b1;
                        seeded <= 1'b1;
                    end
                    if (a) b <= 1'b1;
                    if (b) a <= 1'b1;
                    if (a) out <= result;
                end
            endmodule",
        },
        Snippet {
            subclass: ProducerConsumerMismatch,
            section: "3.3.2",
            buggy: "module snip(input clk, input [7:0] x, input x_valid,
                               input [7:0] y, input y_valid, output reg [7:0] out,
                               output reg out_valid);
                always @(posedge clk) begin
                    out_valid <= x_valid || y_valid;
                    if (x_valid) out <= x;
                    else if (y_valid) out <= y;
                end
            endmodule",
            fixed: "module snip(input clk, input [7:0] x, input x_valid,
                               input [7:0] y, input y_valid, output reg [7:0] out,
                               output reg out_valid);
                reg [7:0] pend;
                reg pend_v;
                always @(posedge clk) begin
                    out_valid <= 1'b0;
                    if (x_valid) begin
                        out <= x;
                        out_valid <= 1'b1;
                        if (y_valid) begin
                            pend <= y;
                            pend_v <= 1'b1;
                        end
                    end else if (y_valid) begin
                        out <= y;
                        out_valid <= 1'b1;
                    end else if (pend_v) begin
                        out <= pend;
                        out_valid <= 1'b1;
                        pend_v <= 1'b0;
                    end
                end
            endmodule",
        },
        Snippet {
            subclass: SignalAsynchrony,
            section: "3.3.3",
            buggy: "module snip(input clk, input request, input [7:0] input_data,
                               output reg [7:0] final_response, output reg final_response_valid);
                reg [7:0] buffered_response;
                always @(posedge clk) begin
                    if (request) buffered_response <= input_data + 8'd1;
                    final_response <= buffered_response;
                    if (request) final_response_valid <= 1'b1;
                    else final_response_valid <= 1'b0;
                end
            endmodule",
            fixed: "module snip(input clk, input request, input [7:0] input_data,
                               output reg [7:0] final_response, output reg final_response_valid);
                reg [7:0] buffered_response;
                reg delayed_response_valid;
                always @(posedge clk) begin
                    if (request) buffered_response <= input_data + 8'd1;
                    final_response <= buffered_response;
                    if (request) delayed_response_valid <= 1'b1;
                    else delayed_response_valid <= 1'b0;
                    final_response_valid <= delayed_response_valid;
                end
            endmodule",
        },
        Snippet {
            subclass: UseWithoutValid,
            section: "3.3.4",
            buggy: "module snip(input clk, input [7:0] data, input data_valid,
                               output reg [15:0] sum);
                always @(posedge clk) sum <= sum + {8'd0, data};
            endmodule",
            fixed: "module snip(input clk, input [7:0] data, input data_valid,
                               output reg [15:0] sum);
                always @(posedge clk) begin
                    if (data_valid) sum <= sum + {8'd0, data};
                    else sum <= sum;
                end
            endmodule",
        },
        Snippet {
            subclass: ProtocolViolation,
            section: "3.4.1",
            // A ready/valid source that drops valid before the handshake.
            buggy: "module snip(input clk, input start, input ready,
                               output reg valid, output reg [7:0] word);
                always @(posedge clk) begin
                    if (start) begin
                        valid <= 1'b1;
                        word <= 8'hA5;
                    end else begin
                        valid <= 1'b0;
                    end
                end
            endmodule",
            fixed: "module snip(input clk, input start, input ready,
                               output reg valid, output reg [7:0] word);
                always @(posedge clk) begin
                    if (start) begin
                        valid <= 1'b1;
                        word <= 8'hA5;
                    end else if (valid && ready) begin
                        valid <= 1'b0;
                    end
                end
            endmodule",
        },
        Snippet {
            subclass: ApiMisuse,
            section: "3.4.2",
            // greater_than computes x > y; connections swapped.
            buggy: "module greater_than(input [7:0] x, input [7:0] y, output result);
                assign result = x > y;
            endmodule
            module snip(input [7:0] a, input [7:0] b, output out);
                greater_than a_greater_than_b (.x(b), .y(a), .result(out));
            endmodule",
            fixed: "module greater_than(input [7:0] x, input [7:0] y, output result);
                assign result = x > y;
            endmodule
            module snip(input [7:0] a, input [7:0] b, output out);
                greater_than a_greater_than_b (.x(a), .y(b), .result(out));
            endmodule",
        },
        Snippet {
            subclass: IncompleteImplementation,
            section: "3.4.3",
            // A divider stub that never handled the divide-by-zero case.
            buggy: "module snip(input clk, input [7:0] num, input [7:0] den,
                               output reg [7:0] quo, output reg err);
                always @(posedge clk) begin
                    quo <= num / den;
                    err <= 1'b0;
                end
            endmodule",
            fixed: "module snip(input clk, input [7:0] num, input [7:0] den,
                               output reg [7:0] quo, output reg err);
                always @(posedge clk) begin
                    if (den == 8'd0) begin
                        quo <= 8'hFF;
                        err <= 1'b1;
                    end else begin
                        quo <= num / den;
                        err <= 1'b0;
                    end
                end
            endmodule",
        },
        Snippet {
            subclass: ErroneousExpression,
            section: "3.4.4",
            // Control-flow expression off by a comparison direction.
            buggy: "module snip(input clk, input [7:0] level, output reg alarm);
                always @(posedge clk) begin
                    if (level < 8'd200) alarm <= 1'b1;
                    else alarm <= 1'b0;
                end
            endmodule",
            fixed: "module snip(input clk, input [7:0] level, output reg alarm);
                always @(posedge clk) begin
                    if (level > 8'd200) alarm <= 1'b1;
                    else alarm <= 1'b0;
                end
            endmodule",
        },
    ]
}

/// Builds a simulator for a snippet source.
///
/// # Errors
///
/// Propagates parse/elaboration/simulation construction errors.
pub fn snippet_sim(src: &str) -> Result<Simulator, Box<dyn std::error::Error>> {
    let file = hwdbg_rtl::parse(src)?;
    let top = file
        .modules
        .last()
        .ok_or("empty snippet")?
        .name
        .clone();
    let design = elaborate(&file, &top, &StdIpLib::new())?;
    Ok(simulator(design)?)
}

/// Convenience used by the demonstration tests: steps `clk` once with the
/// given pokes applied.
pub fn step_with(sim: &mut Simulator, pokes: &[(&str, u64)]) -> Result<(), SimError> {
    for (name, v) in pokes {
        sim.poke_u64(name, *v)?;
    }
    sim.step("clk")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subclass_has_a_snippet() {
        let snippets = all();
        assert_eq!(snippets.len(), 13);
        let mut subs: Vec<_> = snippets.iter().map(|s| s.subclass).collect();
        subs.sort();
        subs.dedup();
        assert_eq!(subs.len(), 13);
    }

    #[test]
    fn all_snippets_elaborate_buggy_and_fixed() {
        for s in all() {
            snippet_sim(s.buggy).unwrap_or_else(|e| panic!("{:?} buggy: {e}", s.subclass));
            snippet_sim(s.fixed).unwrap_or_else(|e| panic!("{:?} fixed: {e}", s.subclass));
        }
    }

    fn find(sub: Subclass) -> Snippet {
        all().into_iter().find(|s| s.subclass == sub).unwrap()
    }

    #[test]
    fn buffer_overflow_snippet_drops_high_offsets() {
        let s = find(Subclass::BufferOverflow);
        let mut sim = snippet_sim(s.buggy).unwrap();
        step_with(&mut sim, &[("offset", 12), ("value", 1)]).unwrap();
        assert_eq!(sim.peek("view").unwrap().to_u64(), 0, "write dropped");
        let mut sim = snippet_sim(s.fixed).unwrap();
        step_with(&mut sim, &[("offset", 12), ("value", 1)]).unwrap();
        assert_eq!(sim.peek("view").unwrap().to_u64(), 1 << 12);
    }

    #[test]
    fn truncation_snippet_loses_bits_47_to_42() {
        let right = 0x0000_FC00_0000_0040u64; // bits 47:42 set plus bit 6
        let s = find(Subclass::BitTruncation);
        let mut sim = snippet_sim(s.buggy).unwrap();
        sim.poke("right", hwdbg_bits::Bits::from_u64(64, right)).unwrap();
        sim.step("clk").unwrap();
        let buggy = sim.peek("left").unwrap().to_u64();
        let mut sim = snippet_sim(s.fixed).unwrap();
        sim.poke("right", hwdbg_bits::Bits::from_u64(64, right)).unwrap();
        sim.step("clk").unwrap();
        let fixed = sim.peek("left").unwrap().to_u64();
        assert_ne!(buggy, fixed);
        assert_eq!(fixed, (right & ((1 << 48) - 1)) >> 6);
    }

    #[test]
    fn endianness_snippet_swaps_bytes() {
        let s = find(Subclass::EndiannessMismatch);
        let pokes = [("least_significant_byte", 0x34u64), ("most_significant_byte", 0x12)];
        let mut sim = snippet_sim(s.buggy).unwrap();
        step_with(&mut sim, &pokes).unwrap();
        assert_eq!(sim.peek("data").unwrap().to_u64(), 0x1234);
        // The consumer expected big-endian layout {lsb, msb}:
        let mut sim = snippet_sim(s.fixed).unwrap();
        step_with(&mut sim, &pokes).unwrap();
        assert_eq!(sim.peek("data").unwrap().to_u64(), 0x3412);
    }

    #[test]
    fn deadlock_snippet_never_progresses() {
        let s = find(Subclass::Deadlock);
        let mut sim = snippet_sim(s.buggy).unwrap();
        sim.poke_u64("result", 42).unwrap();
        sim.run("clk", 50).unwrap();
        assert_eq!(sim.peek("out").unwrap().to_u64(), 0, "a/b never fire");
        let mut sim = snippet_sim(s.fixed).unwrap();
        sim.poke_u64("result", 42).unwrap();
        sim.run("clk", 5).unwrap();
        assert_eq!(sim.peek("out").unwrap().to_u64(), 42);
    }

    #[test]
    fn producer_consumer_snippet_loses_y() {
        let s = find(Subclass::ProducerConsumerMismatch);
        let mut sim = snippet_sim(s.buggy).unwrap();
        step_with(&mut sim, &[("x", 1), ("x_valid", 1), ("y", 2), ("y_valid", 1)]).unwrap();
        step_with(&mut sim, &[("x_valid", 0), ("y_valid", 0)]).unwrap();
        sim.step("clk").unwrap();
        assert_eq!(sim.peek("out").unwrap().to_u64(), 1, "y was lost");
        // Fixed: y drains from the pending register one cycle later.
        let mut sim = snippet_sim(s.fixed).unwrap();
        step_with(&mut sim, &[("x", 1), ("x_valid", 1), ("y", 2), ("y_valid", 1)]).unwrap();
        assert_eq!(sim.peek("out").unwrap().to_u64(), 1);
        step_with(&mut sim, &[("x_valid", 0), ("y_valid", 0)]).unwrap();
        assert_eq!(sim.peek("out").unwrap().to_u64(), 2, "pending y delivered");
    }

    #[test]
    fn use_without_valid_snippet_accumulates_garbage() {
        let s = find(Subclass::UseWithoutValid);
        let mut sim = snippet_sim(s.buggy).unwrap();
        step_with(&mut sim, &[("data", 5), ("data_valid", 1)]).unwrap();
        step_with(&mut sim, &[("data", 9), ("data_valid", 0)]).unwrap(); // stale bus noise
        assert_eq!(sim.peek("sum").unwrap().to_u64(), 14, "invalid data summed");
        let mut sim = snippet_sim(s.fixed).unwrap();
        step_with(&mut sim, &[("data", 5), ("data_valid", 1)]).unwrap();
        step_with(&mut sim, &[("data", 9), ("data_valid", 0)]).unwrap();
        assert_eq!(sim.peek("sum").unwrap().to_u64(), 5);
    }

    #[test]
    fn api_misuse_snippet_computes_the_wrong_comparison() {
        let s = find(Subclass::ApiMisuse);
        let mut sim = snippet_sim(s.buggy).unwrap();
        sim.poke_u64("a", 9).unwrap();
        sim.poke_u64("b", 3).unwrap();
        sim.settle().unwrap();
        assert!(!sim.peek("out").unwrap().to_bool(), "computes b > a");
        let mut sim = snippet_sim(s.fixed).unwrap();
        sim.poke_u64("a", 9).unwrap();
        sim.poke_u64("b", 3).unwrap();
        sim.settle().unwrap();
        assert!(sim.peek("out").unwrap().to_bool());
    }

    #[test]
    fn erroneous_expression_snippet_inverts_the_alarm() {
        let s = find(Subclass::ErroneousExpression);
        let mut sim = snippet_sim(s.buggy).unwrap();
        step_with(&mut sim, &[("level", 250)]).unwrap();
        assert!(!sim.peek("alarm").unwrap().to_bool(), "alarm missed");
        let mut sim = snippet_sim(s.fixed).unwrap();
        step_with(&mut sim, &[("level", 250)]).unwrap();
        assert!(sim.peek("alarm").unwrap().to_bool());
    }

    #[test]
    fn incomplete_implementation_snippet_misses_div_by_zero() {
        let s = find(Subclass::IncompleteImplementation);
        let mut sim = snippet_sim(s.buggy).unwrap();
        step_with(&mut sim, &[("num", 10), ("den", 0)]).unwrap();
        assert!(!sim.peek("err").unwrap().to_bool(), "corner case unhandled");
        let mut sim = snippet_sim(s.fixed).unwrap();
        step_with(&mut sim, &[("num", 10), ("den", 0)]).unwrap();
        assert!(sim.peek("err").unwrap().to_bool());
        assert_eq!(sim.peek("quo").unwrap().to_u64(), 0xFF);
    }
}
