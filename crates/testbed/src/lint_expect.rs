//! Expected static-lint findings per testbed bug.
//!
//! This is the checked-in snapshot the `lint-suite` CI job and the
//! `lint_effectiveness` benchmark compare against: for each of the 20
//! testbed bugs, the set of `hwdbg-lint` L-codes that fire on the *buggy*
//! design under default configuration. Every *fixed* design must produce
//! zero findings — that side needs no table.
//!
//! Not every bug is statically detectable: timing-dependent losses, wrong
//! constants, and protocol misunderstandings (e.g. D3's address aliasing)
//! only manifest dynamically, which is exactly the boundary the paper draws
//! between static checking and run-time instrumentation. 14 of 20 carry a
//! static fingerprint, five of them through the dataflow-taint passes that
//! interpret the propagation graph (occupancy intervals, handshake
//! qualification, backpressure reachability, cast/shift precision).

use crate::BugId;

/// L-codes expected on the buggy variant of `id`, sorted, deduplicated.
/// Empty means the bug has no static fingerprint and lint must stay silent.
pub fn expected_lints(id: BugId) -> &'static [&'static str] {
    match id {
        // D1: obuf sized 10 but the wrap test allows indices up to 11.
        BugId::D1 => &["L0501"],
        // D2: wr_ptr increments without any wrap test; linebuf holds 12.
        BugId::D2 => &["L0501"],
        // D4: `full` admits a write at occupancy 16 against a 16-deep mem.
        BugId::D4 => &["L0605"],
        // D5: a 64-bit intermediate stored into a 32-bit temporary.
        BugId::D5 => &["L0202"],
        // D6: `16'(prod) >> 4` truncates before the shift instead of after.
        BugId::D6 => &["L0502"],
        // D10: the `start` branch re-seeds every working register but `b`.
        BugId::D10 => &["L0405"],
        // D11: `drop` is set on a malformed header and never cleared.
        BugId::D11 => &["L0404"],
        // C1: tx_ready and rx_ready each wait for the other; both reset 0.
        BugId::C1 => &["L0602"],
        // C2: `vm0_stall` is tied low, so VM0 can never be throttled.
        BugId::C2 => &["L0604"],
        // C3: `delayed_valid` exists but nothing reads it.
        BugId::C3 => &["L0402"],
        // C4: the registered `s_ready_r` threshold leaves no skid margin.
        BugId::C4 => &["L0606"],
        // S1: bvalid is only asserted once bready is already high.
        BugId::S1 => &["L0601"],
        // S2: tdata/tlast advance on paths never qualified by the handshake.
        BugId::S2 => &["L0603"],
        // S3: `s_keep` reaches only the $display call, never the datapath.
        BugId::S3 => &["L0403"],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_enough_bugs() {
        let flagged = BugId::ALL
            .iter()
            .filter(|id| !expected_lints(**id).is_empty())
            .count();
        assert!(
            flagged >= 14,
            "static lints must flag at least 14 of the 20 testbed bugs, got {flagged}"
        );
        for id in BugId::ALL {
            let codes = expected_lints(id);
            let mut sorted = codes.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(codes, sorted.as_slice(), "{id:?}: snapshot not sorted/deduped");
        }
    }
}
