//! Testbed of 20 reproducible FPGA bugs (the paper's Table 2) plus the
//! 68-bug study catalog (Table 1).
//!
//! Every bug ships with its buggy Verilog source, the fix, a workload that
//! exhibits the symptom push-button, and metadata matching the paper's
//! classification. [`reproduce`] runs the buggy design (expecting the
//! symptom) and the fixed design (expecting a pass), which is the property
//! the integration tests and the Table 2 harness rely on.
//!
//! # Examples
//!
//! ```
//! use hwdbg_testbed::{reproduce, BugId};
//!
//! let report = reproduce(BugId::C1)?;
//! assert!(report.symptom_observed);
//! assert!(report.fixed_passes);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod faults;
pub mod lint_expect;
pub mod snippets;
pub mod study;
pub mod workloads;

use hwdbg_dataflow::Design;
use hwdbg_ip::{StdIpLib, StdModels};
use hwdbg_sim::{SimConfig, SimError, Simulator};
use std::fmt;

/// The three top-level bug classes of the study (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BugClass {
    /// Improper consideration of data size/endianness/layout (§3.2).
    DataMisAccess,
    /// Violations of inter-component communication standards (§3.3).
    Communication,
    /// Remaining violations of intended functionality (§3.4).
    Semantic,
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BugClass::DataMisAccess => "Data Mis-Access",
            BugClass::Communication => "Communication",
            BugClass::Semantic => "Semantic",
        })
    }
}

/// The thirteen bug subclasses of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Subclass {
    BufferOverflow,
    BitTruncation,
    Misindexing,
    EndiannessMismatch,
    FailureToUpdate,
    Deadlock,
    ProducerConsumerMismatch,
    SignalAsynchrony,
    UseWithoutValid,
    ProtocolViolation,
    ApiMisuse,
    IncompleteImplementation,
    ErroneousExpression,
}

impl Subclass {
    /// The class this subclass belongs to.
    pub fn class(self) -> BugClass {
        use Subclass::*;
        match self {
            BufferOverflow | BitTruncation | Misindexing | EndiannessMismatch
            | FailureToUpdate => BugClass::DataMisAccess,
            Deadlock | ProducerConsumerMismatch | SignalAsynchrony | UseWithoutValid => {
                BugClass::Communication
            }
            ProtocolViolation | ApiMisuse | IncompleteImplementation | ErroneousExpression => {
                BugClass::Semantic
            }
        }
    }

    /// Human-readable name as printed in Table 1.
    pub fn name(self) -> &'static str {
        use Subclass::*;
        match self {
            BufferOverflow => "Buffer Overflow",
            BitTruncation => "Bit Truncation",
            Misindexing => "Misindexing",
            EndiannessMismatch => "Endianness Mismatch",
            FailureToUpdate => "Failure-to-Update",
            Deadlock => "Deadlock",
            ProducerConsumerMismatch => "Producer-Consumer Mismatch",
            SignalAsynchrony => "Signal Asynchrony",
            UseWithoutValid => "Use-Without-Valid",
            ProtocolViolation => "Protocol Violation",
            ApiMisuse => "API Misuse",
            IncompleteImplementation => "Incomplete Implementation",
            ErroneousExpression => "Erroneous Expression",
        }
    }
}

impl fmt::Display for Subclass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Observable symptom categories (Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Symptom {
    /// Infinite stall ("Stuck").
    Stuck,
    /// Data loss ("Loss").
    DataLoss,
    /// Incorrect output value ("Incor.").
    IncorrectOutput,
    /// An external monitor (FPGA shell / protocol checker) reports an
    /// error ("Ext.").
    ExternalError,
}

impl fmt::Display for Symptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Symptom::Stuck => "Stuck",
            Symptom::DataLoss => "Loss",
            Symptom::IncorrectOutput => "Incor.",
            Symptom::ExternalError => "Ext.",
        })
    }
}

/// The debugging tools of the paper (Table 2 "Helpful Tools" columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tool {
    /// SignalCat (§4.1).
    SignalCat,
    /// FSM Monitor (§4.2).
    FsmMonitor,
    /// Statistics Monitor (§4.4).
    StatMonitor,
    /// Dependency Monitor (§4.3).
    DepMonitor,
    /// LossCheck (§4.5).
    LossCheck,
}

impl fmt::Display for Tool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tool::SignalCat => "SC",
            Tool::FsmMonitor => "FSM",
            Tool::StatMonitor => "Stat.",
            Tool::DepMonitor => "Dep.",
            Tool::LossCheck => "LC",
        })
    }
}

/// Target platform of a testbed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugPlatform {
    /// Intel HARP (synthesized with Quartus in the paper).
    Harp,
    /// Xilinx (synthesized with Vivado in the paper).
    Xilinx,
    /// Platform-independent.
    Generic,
}

impl fmt::Display for BugPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BugPlatform::Harp => "HARP",
            BugPlatform::Xilinx => "Xilinx",
            BugPlatform::Generic => "Generic",
        })
    }
}

/// Identifier of a testbed bug (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum BugId {
    D1, D2, D3, D4, D5, D6, D7, D8, D9, D10, D11, D12, D13,
    C1, C2, C3, C4,
    S1, S2, S3,
}

impl BugId {
    /// All 20 bugs in Table 2 order.
    pub const ALL: [BugId; 20] = [
        BugId::D1, BugId::D2, BugId::D3, BugId::D4, BugId::D5, BugId::D6, BugId::D7,
        BugId::D8, BugId::D9, BugId::D10, BugId::D11, BugId::D12, BugId::D13,
        BugId::C1, BugId::C2, BugId::C3, BugId::C4,
        BugId::S1, BugId::S2, BugId::S3,
    ];
}

impl fmt::Display for BugId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::str::FromStr for BugId {
    type Err = String;

    /// Parses a bug ID by its Table-2 name (`D2`, `c4`, ...), case
    /// insensitively — campaign spec files and CLI arguments both resolve
    /// through here.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BugId::ALL
            .into_iter()
            .find(|id| id.to_string().eq_ignore_ascii_case(s))
            .ok_or_else(|| format!("unknown bug id `{s}` (expected one of D1..D13, C1..C4, S1..S3)"))
    }
}

/// LossCheck configuration metadata for the data-loss bugs.
#[derive(Debug, Clone, Copy)]
pub struct LossSpec {
    /// Source register/input.
    pub source: &'static str,
    /// Sink register/output.
    pub sink: &'static str,
    /// Valid signal for the source.
    pub valid: &'static str,
    /// Register expected to be localized as the loss site (LossCheck
    /// report names; memories may carry an `!oob` tag).
    pub expect: &'static str,
    /// Whether ground-truth filtering is required to localize this bug.
    pub needs_filtering: bool,
}

/// Static metadata for one testbed bug (one Table 2 row).
#[derive(Debug, Clone)]
pub struct BugMeta {
    /// Bug identifier.
    pub id: BugId,
    /// Bug subclass (implies the class).
    pub subclass: Subclass,
    /// Application the bug lives in.
    pub app: &'static str,
    /// Target platform.
    pub platform: BugPlatform,
    /// Symptoms the bug exhibits.
    pub symptoms: &'static [Symptom],
    /// Tools that help localize the root cause.
    pub helpful: &'static [Tool],
    /// Top module name.
    pub top: &'static str,
    /// Buggy source text.
    pub source: &'static str,
    /// `(find, replace)` patches that produce the fixed design.
    pub fix: &'static [(&'static str, &'static str)],
    /// Target clock frequency in MHz (§6.4).
    pub target_mhz: f64,
    /// LossCheck setup for data-loss bugs.
    pub loss: Option<LossSpec>,
    /// Ground-truth state registers that implement FSMs (for the FSM
    /// detector's confusion matrix in §6.3/§4.2).
    pub fsm_registers: &'static [&'static str],
}

impl BugMeta {
    /// The fixed source (patches applied).
    ///
    /// # Panics
    ///
    /// Panics if a patch does not match the source (a testbed bug).
    pub fn fixed_source(&self) -> String {
        let mut src = self.source.to_owned();
        for (find, replace) in self.fix {
            assert!(
                src.contains(find),
                "{}: fix patch `{}` not found",
                self.id,
                find
            );
            src = src.replace(find, replace);
        }
        src
    }
}

mod meta;
pub use meta::metadata;

/// Elaborates the buggy design of a bug.
///
/// # Errors
///
/// Propagates parse/elaboration errors (a testbed regression if they occur).
pub fn buggy_design(id: BugId) -> Result<Design, Box<dyn std::error::Error>> {
    let m = metadata(id);
    let file = hwdbg_rtl::parse(m.source)?;
    Ok(hwdbg_dataflow::elaborate(&file, m.top, &StdIpLib::new())?)
}

/// Elaborates the fixed design of a bug.
///
/// # Errors
///
/// Propagates parse/elaboration errors.
pub fn fixed_design(id: BugId) -> Result<Design, Box<dyn std::error::Error>> {
    let m = metadata(id);
    let file = hwdbg_rtl::parse(&m.fixed_source())?;
    Ok(hwdbg_dataflow::elaborate(&file, m.top, &StdIpLib::new())?)
}

/// Builds a simulator for any elaborated design with the standard IP
/// models.
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn simulator(design: Design) -> Result<Simulator, SimError> {
    Simulator::new(design, &StdModels, SimConfig::default())
}

/// Result of a workload run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The design behaved correctly.
    Pass,
    /// The design misbehaved.
    Fail {
        /// The observed symptom category.
        symptom: Symptom,
        /// Human-readable description of what went wrong.
        detail: String,
    },
}

/// Report produced by [`reproduce`].
#[derive(Debug, Clone)]
pub struct BugReport {
    /// Which bug was reproduced.
    pub id: BugId,
    /// True if the buggy design exhibited a symptom listed in its
    /// metadata.
    pub symptom_observed: bool,
    /// The observed symptom, if any.
    pub symptom: Option<Symptom>,
    /// Failure detail from the workload.
    pub detail: String,
    /// True if the patched design passed the same workload.
    pub fixed_passes: bool,
}

/// Reproduces a bug push-button: runs the workload against the buggy
/// design (expecting the documented symptom) and against the fixed design
/// (expecting a pass).
///
/// # Errors
///
/// Propagates elaboration/simulation errors; a `BugReport` with
/// `symptom_observed == false` indicates the testbed itself regressed.
pub fn reproduce(id: BugId) -> Result<BugReport, Box<dyn std::error::Error>> {
    let m = metadata(id);
    let mut buggy = simulator(buggy_design(id)?)?;
    let outcome = workloads::run(id, &mut buggy)?;
    let (symptom_observed, symptom, detail) = match outcome {
        Outcome::Pass => (false, None, "buggy design unexpectedly passed".to_owned()),
        Outcome::Fail { symptom, detail } => {
            (m.symptoms.contains(&symptom), Some(symptom), detail)
        }
    };
    let mut fixed = simulator(fixed_design(id)?)?;
    let fixed_passes = matches!(workloads::run(id, &mut fixed)?, Outcome::Pass);
    Ok(BugReport {
        id,
        symptom_observed,
        symptom,
        detail,
        fixed_passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_covers_all_bugs() {
        for id in BugId::ALL {
            let m = metadata(id);
            assert_eq!(m.id, id);
            assert!(!m.symptoms.is_empty(), "{id}");
            assert!(m.helpful.contains(&Tool::SignalCat), "{id}: SC helps all");
            // Fix patches apply cleanly and change the source.
            assert_ne!(m.fixed_source(), m.source, "{id}");
        }
    }

    #[test]
    fn all_designs_elaborate_buggy_and_fixed() {
        for id in BugId::ALL {
            buggy_design(id).unwrap_or_else(|e| panic!("{id} buggy: {e}"));
            fixed_design(id).unwrap_or_else(|e| panic!("{id} fixed: {e}"));
        }
    }

    #[test]
    fn class_assignment_matches_table1() {
        assert_eq!(Subclass::BufferOverflow.class(), BugClass::DataMisAccess);
        assert_eq!(Subclass::Deadlock.class(), BugClass::Communication);
        assert_eq!(Subclass::ErroneousExpression.class(), BugClass::Semantic);
    }

    #[test]
    fn loss_bugs_have_loss_specs() {
        // The seven data-loss bugs of §6.3: D1–D4, D11, C2, C4.
        for id in [BugId::D1, BugId::D2, BugId::D3, BugId::D4, BugId::D11, BugId::C2, BugId::C4]
        {
            assert!(metadata(id).loss.is_some(), "{id}");
        }
    }
}
