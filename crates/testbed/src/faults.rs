//! Design-driven fault plans for the resilience suite.
//!
//! The paper's premise (§2) is that deployed FPGA logic misbehaves in ways
//! the developer did not anticipate — bit flips from marginal timing, stuck
//! nets from partial reconfiguration, dropped handshakes from clock-domain
//! asynchrony. The debugging tools must keep producing *useful* output when
//! the design under observation is actively being perturbed. This module
//! derives one [`FaultPlan`] per fault class from a design's own signal
//! table, so every testbed bug can be stressed uniformly without
//! hand-curated per-bug plans.
//!
//! Target selection is deterministic: signals are drawn from the design's
//! sorted signal map, skipping clocks, resets, and tool-generated (`__`)
//! names, so a given (design, class, seed) triple always yields the same
//! plan.

use hwdbg_bits::Bits;
use hwdbg_dataflow::{Design, SigInfo, SigKind};
use hwdbg_sim::FaultPlan;

/// The four fault classes the resilience suite injects (ISSUE: stuck-at,
/// single-bit flip, handshake drop, forced unknown state on reset).
pub const FAULT_CLASSES: [&str; 4] = ["stuck-at", "bit-flip", "handshake-drop", "force-x"];

/// Cycle at which injected faults switch on. Late enough that every
/// workload is past reset and mid-stream.
const FAULT_FROM: u64 = 8;

/// Window length for bounded faults (stuck-at, handshake-drop, force-x).
const FAULT_SPAN: u64 = 12;

fn is_control(name: &str) -> bool {
    name == "clk"
        || name == "rst"
        || name == "rst_n"
        || name == "reset"
        || name.ends_with("_clk")
        || name.ends_with("_rst")
}

fn injectable(s: &SigInfo) -> bool {
    !s.name.starts_with("__") && !is_control(&s.name) && s.mem_depth.is_none() && s.width > 0
}

/// First state register (sorted by name) that is safe to perturb.
fn pick_register(design: &Design) -> Option<&SigInfo> {
    design
        .signals
        .values()
        .find(|s| injectable(s) && s.kind == SigKind::Reg)
}

/// Widest injectable register, for the force-X class (maximum blast
/// radius when scrambled).
fn pick_wide_register(design: &Design) -> Option<&SigInfo> {
    design
        .signals
        .values()
        .filter(|s| injectable(s) && s.kind == SigKind::Reg)
        .max_by_key(|s| (s.width, std::cmp::Reverse(s.name.clone())))
}

/// A 1-bit signal that looks like a handshake strobe (valid/ready/etc.).
fn pick_handshake(design: &Design) -> Option<&SigInfo> {
    const STROBES: [&str; 8] = ["valid", "ready", "req", "ack", "go", "start", "en", "done"];
    design.signals.values().find(|s| {
        injectable(s)
            && s.width == 1
            && s.kind != SigKind::Undriven
            && STROBES.iter().any(|k| s.name.contains(k))
    })
}

/// Builds the fault plan for one class against one design, or `None` if
/// the design offers no suitable target (e.g. no handshake strobes).
///
/// The returned plan is already validated against the design.
pub fn build_plan(design: &Design, class: &str, seed: u64) -> Option<FaultPlan> {
    let until = Some(FAULT_FROM + FAULT_SPAN);
    let plan = match class {
        "stuck-at" => {
            let reg = pick_register(design)?;
            // Stuck at all-ones: maximally far from the usual reset value.
            let ones = Bits::from_u64(64.min(reg.width), u64::MAX).resize(reg.width);
            FaultPlan::new().stuck_at(&reg.name, ones, FAULT_FROM, until)
        }
        "bit-flip" => {
            let reg = pick_register(design)?;
            let bit = (seed % u64::from(reg.width)) as u32;
            FaultPlan::new().bit_flip(&reg.name, bit, FAULT_FROM + seed % FAULT_SPAN)
        }
        "handshake-drop" => {
            let strobe = pick_handshake(design)?;
            FaultPlan::new().handshake_drop(&strobe.name, FAULT_FROM, until)
        }
        "force-x" => {
            let reg = pick_wide_register(design)?;
            FaultPlan::new().force_random(&reg.name, seed | 1, FAULT_FROM, until)
        }
        _ => return None,
    };
    plan.validate(design).ok()?;
    Some(plan)
}

/// Every applicable `(class, plan)` pair for a design. Designs always have
/// at least one register, so at minimum the stuck-at, bit-flip, and
/// force-x classes apply.
pub fn all_plans(design: &Design, seed: u64) -> Vec<(&'static str, FaultPlan)> {
    FAULT_CLASSES
        .iter()
        .filter_map(|class| build_plan(design, class, seed).map(|p| (*class, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{buggy_design, BugId};

    #[test]
    fn every_bug_gets_every_class() {
        for id in BugId::ALL {
            let design = buggy_design(id).unwrap();
            let plans = all_plans(&design, 7);
            assert_eq!(
                plans.len(),
                FAULT_CLASSES.len(),
                "{id}: only {} fault classes applied",
                plans.len()
            );
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let design = buggy_design(BugId::D2).unwrap();
        let a = all_plans(&design, 3);
        let b = all_plans(&design, 3);
        let fmt = |v: &[(&str, FaultPlan)]| {
            v.iter()
                .map(|(c, p)| format!("{c}: {:?}", p.faults))
                .collect::<Vec<_>>()
        };
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn unknown_class_is_none() {
        let design = buggy_design(BugId::D1).unwrap();
        assert!(build_plan(&design, "meteor-strike", 0).is_none());
    }
}
