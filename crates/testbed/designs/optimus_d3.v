// Optimus-style FPGA hypervisor MMIO mailbox (Intel HARP, 400 MHz target).
//
// Two virtual machines share one physical mailbox RAM. Each VM owns six
// slots; the hypervisor muxes guest writes into the RAM and serves guest
// reads back. Rich debug `$display`s cover the datapath (the hypervisor is
// the most heavily instrumented design in the testbed, like the paper's
// Optimus).
//
// BUG D3 (buffer overflow): the slot address is formed as {vm_id, offset}
// (a stride of 8) but the RAM only has 12 entries; VM1's offsets 4 and 5
// map to addresses 12 and 13, overflow the RAM, and the writes vanish.
module optimus_d3 (
  input clk,
  input rst,
  input vm_id,
  input [2:0] offset,
  input wr_valid,
  input [31:0] wdata,
  input rd_valid,
  output reg [31:0] rdata,
  output reg rdata_valid,
  output reg [7:0] wr_count,
  output reg [7:0] rd_count
);
  reg [31:0] mbox [0:11];

  wire [3:0] slot;
  assign slot = {vm_id, offset};   // BUG: should be vm_id ? offset + 6 : offset

  always @(posedge clk) begin
    if (rst) begin
      rdata_valid <= 1'b0;
      wr_count <= 8'd0;
      rd_count <= 8'd0;
    end else begin
      rdata_valid <= 1'b0;
      if (wr_valid) begin
        mbox[slot] <= wdata;
        wr_count <= wr_count + 8'd1;
        if (vm_id) begin
          $display("optimus: vm1 write slot %0d = %h", offset, wdata);
        end else begin
          $display("optimus: vm0 write slot %0d = %h", offset, wdata);
        end
        if (wdata == 32'hdead_beef) $display("optimus: poison value written");
      end
      if (rd_valid) begin
        rdata <= mbox[slot];
        rdata_valid <= 1'b1;
        rd_count <= rd_count + 8'd1;
        if (vm_id && offset > 3'd3) $display("optimus: vm1 high-slot read");
        if (rd_count == wr_count) $display("optimus: mailbox drained");
      end
      if (wr_count - rd_count > 8'd8) $display("optimus: backlog %0d", wr_count - rd_count);
    end
  end
endmodule
