// SD-card SPI controller, response path (ZipCPU SDSPI style, generic).
//
// A command FSM shifts a 16-bit response in from `miso`, MSB first, one bit
// per cycle, then presents it to the host.
//
// BUG D9 (endianness mismatch): the two response bytes are stored swapped —
// the first (most significant) byte lands in resp[7:0] — the little/big
// endian confusion of §3.2.4.
module sdspi_d9 (
  input clk,
  input rst,
  input go,
  input miso,
  output reg [15:0] resp,
  output reg resp_valid,
  output [1:0] state_dbg
);
  localparam IDLE = 2'd0;
  localparam RECV = 2'd1;
  localparam DONE = 2'd2;

  reg [1:0] state;
  reg [15:0] shift;
  reg [4:0] bitcnt;

  assign state_dbg = state;

  always @(posedge clk) begin
    if (rst) begin
      state <= IDLE;
      resp_valid <= 1'b0;
      bitcnt <= 5'd0;
    end else begin
      resp_valid <= 1'b0;
      case (state)
        IDLE: if (go) begin
          state <= RECV;
          bitcnt <= 5'd0;
          $display("sdspi: receive start");
        end
        RECV: begin
          shift <= {shift[14:0], miso};
          bitcnt <= bitcnt + 5'd1;
          if (bitcnt == 5'd15) state <= DONE;
        end
        DONE: begin
          // BUG: bytes swapped; should be {shift[15:8], shift[7:0]}.
          resp[7:0] <= shift[15:8];
          resp[15:8] <= shift[7:0];
          resp_valid <= 1'b1;
          state <= IDLE;
          $display("sdspi: response ready");
        end
        default: state <= IDLE;
      endcase
    end
  end
endmodule
