// Optimus-style FPGA hypervisor response arbiter (Intel HARP, 400 MHz).
//
// Each virtual function completes requests on its own channel; completions
// are parked in per-VM registers and an arbiter multiplexes the parked
// responses onto the single physical channel back to the guests.
//
// BUG C2 (producer-consumer mismatch): the arbiter gives VM0 absolute
// priority and never back-pressures the VM0 completion stream
// (`vm0_stall` is hardwired low). While VM0 keeps completing, VM1's
// parking register is never drained and each new VM1 completion
// overwrites the unsent one — the bounded-buffer race of §3.3.2. The
// guest waiting for a lost response hangs forever.
module optimus_c2 (
  input clk,
  input rst,
  input [15:0] vm0_resp,
  input vm0_valid,
  input [15:0] vm1_resp,
  input vm1_valid,
  input resp_ready,
  output reg [16:0] resp,      // {vm, payload}
  output reg resp_valid,
  output reg [7:0] vm0_sent,
  output reg [7:0] vm1_sent,
  output vm0_stall
);
  localparam ARB_IDLE = 2'd0;
  localparam ARB_BUSY = 2'd1;

  reg [1:0] arb_state;
  reg [15:0] vm0_r;
  reg vm0_rv;
  reg [15:0] vm1_r;
  reg vm1_rv;

  // BUG: no backpressure toward the VM0 completion stream, so the arbiter
  // can never catch up on VM1's parked response.
  assign vm0_stall = 1'b0;

  always @(posedge clk) begin
    if (rst) begin
      arb_state <= ARB_IDLE;
      resp_valid <= 1'b0;
      vm0_rv <= 1'b0;
      vm1_rv <= 1'b0;
      vm0_sent <= 8'd0;
      vm1_sent <= 8'd0;
    end else begin
      resp_valid <= 1'b0;
      if (vm0_valid) begin
        vm0_r <= vm0_resp;
        vm0_rv <= 1'b1;
        $display("optimus: vm0 completion %h", vm0_resp);
      end
      if (vm1_valid) begin
        vm1_r <= vm1_resp;
        vm1_rv <= 1'b1;
        $display("optimus: vm1 completion %h", vm1_resp);
      end
      if (vm0_valid && vm1_valid) $display("optimus: simultaneous completions");
      if (resp_ready) begin
        if (vm0_rv) begin
          resp <= {1'b0, vm0_r};
          resp_valid <= 1'b1;
          vm0_rv <= vm0_valid;
          vm0_sent <= vm0_sent + 8'd1;
          $display("optimus: forwarded vm0 response %h", vm0_r);
        end else if (vm1_rv) begin
          resp <= {1'b1, vm1_r};
          resp_valid <= 1'b1;
          vm1_rv <= vm1_valid;
          vm1_sent <= vm1_sent + 8'd1;
          $display("optimus: forwarded vm1 response %h", vm1_r);
        end
      end else begin
        if (vm0_rv || vm1_rv) $display("optimus: backpressured responses");
      end
      case (arb_state)
        ARB_IDLE: if (vm0_rv || vm1_rv) arb_state <= ARB_BUSY;
        ARB_BUSY: if (!vm0_rv && !vm1_rv) arb_state <= ARB_IDLE;
        default: arb_state <= ARB_IDLE;
      endcase
      if (vm1_sent + 8'd8 < vm0_sent) begin
        $display("optimus: vm1 starvation suspected (%0d vs %0d)", vm0_sent, vm1_sent);
      end
    end
  end
endmodule
