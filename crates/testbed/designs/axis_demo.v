// AXI-Stream producer demo (Xilinx example style).
//
// Streams a counter pattern of FRAME_LEN words per frame. The AXI-Stream
// rule is that once TVALID is asserted it must stay asserted (with stable
// data) until TREADY completes the handshake.
//
// BUG S2 (protocol violation): on backpressure the producer gives up after
// one cycle, deasserts TVALID, and advances to the next word anyway — the
// stalled word is lost and a protocol monitor flags the dropped TVALID.
module axis_demo (
  input clk,
  input rst,
  input start,
  input tready,
  output reg tvalid,
  output reg [7:0] tdata,
  output reg tlast,
  output reg done
);
  localparam FRAME_LEN = 8;

  reg running;
  // One-hot lane-phase tracker: a real FSM the detection heuristics miss,
  // because its next-state logic rotates through bit selects (rule 5).
  reg [3:0] tx_phase;
  reg [7:0] next_word;
  reg [3:0] sent;

  always @(posedge clk) begin
    if (rst) begin
      tx_phase <= 4'b0001;
      tvalid <= 1'b0;
      running <= 1'b0;
      done <= 1'b0;
      next_word <= 8'd0;
      sent <= 4'd0;
    end else begin
      if (tvalid && tready) tx_phase <= {tx_phase[2:0], tx_phase[3]};
      if (tx_phase[3] && tvalid) $display("axis_demo: lane wrap");
      if (start && !running) begin
        running <= 1'b1;
        next_word <= 8'd1;
        sent <= 4'd0;
        $display("axis_demo: frame start");
      end
      if (running && !done) begin
        // BUG: advances every cycle regardless of the handshake; should
        // hold tvalid/tdata until (tvalid && tready).
        tvalid <= 1'b1;
        tdata <= next_word;
        tlast <= sent == FRAME_LEN - 1;
        next_word <= next_word + 8'd1;
        sent <= sent + 4'd1;
        if (sent == FRAME_LEN - 1) begin
          running <= 1'b0;
          done <= 1'b1;
          $display("axis_demo: frame done");
        end
      end else begin
        tvalid <= 1'b0;
      end
    end
  end
endmodule
