// SD-card SPI controller, transmit/receive handshake (ZipCPU SDSPI style).
//
// The transmit and receive halves synchronize through a pair of ready
// flags before a transfer starts.
//
// BUG C1 (deadlock): `tx_ready` is only set once `rx_ready` is set and vice
// versa, and both reset to 0 — the circular control dependency of §3.3.1.
// The FSM waits on both forever.
module sdspi_c1 (
  input clk,
  input rst,
  input go,
  output reg busy,
  output reg done,
  output [1:0] state_dbg
);
  localparam IDLE = 2'd0;
  localparam WAIT = 2'd1;
  localparam XFER = 2'd2;

  reg [1:0] state;
  reg tx_ready;
  reg rx_ready;
  reg [3:0] cnt;

  assign state_dbg = state;

  always @(posedge clk) begin
    if (rst) begin
      state <= IDLE;
      tx_ready <= 1'b0;   // BUG: one side must power up ready (1'b1)
      rx_ready <= 1'b0;
      busy <= 1'b0;
      done <= 1'b0;
      cnt <= 4'd0;
    end else begin
      if (rx_ready) tx_ready <= 1'b1;
      if (tx_ready) rx_ready <= 1'b1;
      case (state)
        IDLE: if (go) begin
          state <= WAIT;
          busy <= 1'b1;
          $display("sdspi: waiting for ready handshake");
        end
        WAIT: if (tx_ready && rx_ready) begin
          state <= XFER;
          cnt <= 4'd0;
        end
        XFER: begin
          cnt <= cnt + 4'd1;
          if (cnt == 4'd7) begin
            state <= IDLE;
            busy <= 1'b0;
            done <= 1'b1;
            $display("sdspi: transfer complete");
          end
        end
        default: state <= IDLE;
      endcase
    end
  end
endmodule
