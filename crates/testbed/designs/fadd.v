// Single-precision floating point adder (contributed FADD, generic).
//
// Handles normalized, same-sign operands: unpack, align by exponent
// difference, add, renormalize on carry, pack.
//
// BUG D7 (misindexing): the fraction is extracted as bits [23:0] instead of
// [22:0] — exactly the bug reported in §3.2.3 — so the exponent's LSB leaks
// into the significand and the sum is wrong.
module fadd (
  input clk,
  input rst,
  input [31:0] a,
  input [31:0] b,
  input in_valid,
  output reg [31:0] sum,
  output reg out_valid
);
  reg [7:0] exp_a;
  reg [7:0] exp_b;
  reg [24:0] frac_a;
  reg [24:0] frac_b;
  reg sign;
  reg stage2;

  reg [25:0] mant;
  reg [7:0] exp_r;

  always @(posedge clk) begin
    if (rst) begin
      out_valid <= 1'b0;
      stage2 <= 1'b0;
    end else begin
      out_valid <= 1'b0;
      if (in_valid) begin
        exp_a = a[30:23];
        exp_b = b[30:23];
        frac_a = {1'b1, a[23:0]};   // BUG: should be {1'b1, a[22:0], 1'b0}
        frac_b = {1'b1, b[23:0]};   // BUG: should be {1'b1, b[22:0], 1'b0}
        sign <= a[31];
        if (exp_a >= exp_b) begin
          frac_b = frac_b >> (exp_a - exp_b);
          exp_r <= exp_a;
        end else begin
          frac_a = frac_a >> (exp_b - exp_a);
          exp_r <= exp_b;
        end
        mant <= {1'b0, frac_a} + {1'b0, frac_b};
        stage2 <= 1'b1;
      end else begin
        stage2 <= 1'b0;
      end
      if (stage2) begin
        if (mant[25]) begin
          sum <= {sign, exp_r + 8'd1, mant[24:2]};
          $display("fadd: carry renormalize");
        end else begin
          sum <= {sign, exp_r, mant[23:1]};
        end
        out_valid <= 1'b1;
      end
    end
  end
endmodule
