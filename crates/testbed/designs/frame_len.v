// Frame length measurer (generic platform).
//
// Counts the bytes of each frame between start and end markers and emits
// the length after the last byte.
//
// BUG D13 (failure-to-update): the byte counter is never reset when a new
// frame starts, so from the second frame on the reported length includes
// every previous frame.
module frame_len (
  input clk,
  input rst,
  input [7:0] s_data,
  input s_valid,
  input s_sop,
  input s_eop,
  output reg [15:0] len,
  output reg len_valid
);
  reg [15:0] count;
  // One-hot scan-phase tracker (an FSM the heuristics miss).
  reg [3:0] scan_phase;

  always @(posedge clk) begin
    if (rst) begin
      count <= 16'd0;
      len_valid <= 1'b0;
      scan_phase <= 4'b0001;
    end else begin
      if (s_valid) scan_phase <= {scan_phase[2:0], scan_phase[3]};
      if (scan_phase[2] && s_valid) $display("framelen: phase checkpoint");
      len_valid <= 1'b0;
      if (s_valid) begin
        // BUG: missing `if (s_sop) count <= 16'd1; else ...`
        count <= count + 16'd1;
        if (s_eop) begin
          len <= count + 16'd1;
          len_valid <= 1'b1;
          $display("framelen: length %0d", count + 16'd1);
        end
      end
    end
  end
endmodule
