// Store-and-forward frame FIFO (verilog-ethernet style, generic platform).
//
// Words stream in and are committed per frame; when the FIFO has no room
// for a frame it is dropped whole (legitimate drop-on-full behaviour).
//
// BUG D4 (buffer overflow): the full test is off by one (`> 16` instead of
// `>= 16`), so a 17th pending word overwrites the oldest unread slot.
module frame_fifo_d4 (
  input clk,
  input rst,
  input [7:0] s_data,
  input s_valid,
  input m_ready,
  output [7:0] m_data,
  output m_valid,
  output full
);
  reg [7:0] mem [0:15];
  reg [4:0] wr_ptr;
  reg [4:0] rd_ptr;

  assign full = (wr_ptr - rd_ptr) > 5'd16;  // BUG: should be >= 16
  assign m_valid = wr_ptr != rd_ptr;
  assign m_data = mem[rd_ptr[3:0]];

  always @(posedge clk) begin
    if (rst) begin
      wr_ptr <= 5'd0;
      rd_ptr <= 5'd0;
    end else begin
      if (s_valid && !full) begin
        mem[wr_ptr[3:0]] <= s_data;
        wr_ptr <= wr_ptr + 5'd1;
        $display("fifo: stored %h depth=%0d", s_data, wr_ptr - rd_ptr);
      end
      if (s_valid && full) $display("fifo: frame word dropped (full)");
      if (m_valid && m_ready) begin
        rd_ptr <= rd_ptr + 5'd1;
      end
    end
  end
endmodule
