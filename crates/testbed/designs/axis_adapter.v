// AXI-Stream 16-to-8 bit width adapter (verilog-axis style, generic).
//
// Each 16-bit input beat carries a TKEEP pair; an odd-length frame marks
// its final beat with tkeep = 2'b01 (only the low byte meaningful).
//
// BUG S3 (incomplete implementation): the adapter always emits both bytes,
// ignoring TKEEP — the odd-length corner case was never implemented, so
// odd frames gain a garbage trailing byte.
module axis_adapter (
  input clk,
  input rst,
  input [15:0] s_data,
  input [1:0] s_keep,
  input s_valid,
  input s_last,
  output reg [7:0] m_data,
  output reg m_valid,
  output reg m_last
);
  // One-hot byte-phase tracker (an FSM the heuristics miss).
  reg [3:0] byte_phase;
  reg [7:0] pend;
  reg pend_v;
  reg pend_last;

  always @(posedge clk) begin
    if (rst) begin
      m_valid <= 1'b0;
      pend_v <= 1'b0;
      byte_phase <= 4'b0001;
    end else begin
      if (m_valid) byte_phase <= {byte_phase[2:0], byte_phase[3]};
      m_valid <= 1'b0;
      m_last <= 1'b0;
      if (s_valid) begin
        m_data <= s_data[7:0];
        m_valid <= 1'b1;
        // BUG: should check s_keep[1] and, for tkeep == 2'b01, emit the
        // low byte as the final one with m_last set.
        pend <= s_data[15:8];
        pend_v <= 1'b1;
        pend_last <= s_last;
        $display("adapter: beat %h keep=%b", s_data, s_keep);
      end else if (pend_v) begin
        m_data <= pend;
        m_valid <= 1'b1;
        m_last <= pend_last;
        pend_v <= 1'b0;
      end
    end
  end
endmodule
