// SHA-512 style accumulator core (Intel HARP, 400 MHz target).
//
// Sixteen 64-bit message words are absorbed per block; two working
// variables are updated per round and the digest is their final mix.
//
// BUG D5 (bit truncation): the round temporary `t1` was declared 32 bits
// wide, silently truncating the upper half of every round contribution.
module sha512_d5 (
  input clk,
  input rst,
  input [63:0] w,
  input w_valid,
  output reg [63:0] digest,
  output reg done,
  output reg [4:0] round
);
  localparam ROUNDS = 16;
  localparam IV_A = 64'h6a09e667f3bcc908;
  localparam IV_B = 64'hbb67ae8584caa73b;

  reg [63:0] a;
  reg [63:0] b;
  reg [31:0] t1;   // BUG: should be [63:0]

  always @(posedge clk) begin
    if (rst) begin
      a <= IV_A;
      b <= IV_B;
      round <= 5'd0;
      done <= 1'b0;
    end else begin
      if (w_valid && !done) begin
        t1 = w ^ b;
        a <= a + t1;
        b <= b ^ (a >> 7);
        round <= round + 5'd1;
        if (round == ROUNDS - 1) begin
          done <= 1'b1;
          digest <= (a + (w ^ b)) ^ (b ^ (a >> 7));
          $display("sha512: block done after %0d rounds", round + 5'd1);
        end
      end
    end
  end
endmodule
