// SD-card SPI controller, delayed response path (ZipCPU SDSPI style).
//
// The protocol requires two cycles between request and response, so the
// computed response is buffered for an extra cycle (§3.3.3's example).
//
// BUG C3 (signal asynchrony): `final_response_valid` is raised immediately
// on the request instead of being delayed with the data, so the consumer
// samples the response one cycle before it is actually there.
module sdspi_c3 (
  input clk,
  input rst,
  input request,
  input [7:0] input_data,
  output reg [7:0] final_response,
  output reg final_response_valid
);
  reg [7:0] buffered_response;
  reg delayed_valid;
  // One-hot response-phase tracker (an FSM the heuristics miss: rotated
  // through bit selects).
  reg [3:0] resp_phase;

  always @(posedge clk) begin
    if (rst) begin
      final_response_valid <= 1'b0;
      delayed_valid <= 1'b0;
      resp_phase <= 4'b0001;
    end else begin
      if (request || !resp_phase[0]) resp_phase <= {resp_phase[2:0], resp_phase[3]};
      if (request) buffered_response <= input_data + 8'd1;
      final_response <= buffered_response;
      // BUG: should be
      //   if (request) delayed_valid <= 1'b1; else delayed_valid <= 1'b0;
      //   final_response_valid <= delayed_valid;
      if (request) final_response_valid <= 1'b1;
      else final_response_valid <= 1'b0;
      if (request) $display("sdspi: request for %0d", input_data);
    end
  end
endmodule
