// SHA-512 style accumulator core, multi-message variant (Intel HARP).
//
// `start` begins a new message; working variables must be re-seeded with
// the initialization vectors each time.
//
// BUG D10 (failure-to-update): `b` is not re-initialized on `start`, so
// every message after the first hashes against the previous message's
// residue and produces a wrong digest.
module sha512_d10 (
  input clk,
  input rst,
  input start,
  input [63:0] w,
  input w_valid,
  output reg [63:0] digest,
  output reg done,
  output reg [4:0] round
);
  localparam ROUNDS = 8;
  localparam IV_A = 64'h6a09e667f3bcc908;
  localparam IV_B = 64'hbb67ae8584caa73b;

  reg [63:0] a;
  reg [63:0] b;

  always @(posedge clk) begin
    if (rst) begin
      a <= IV_A;
      b <= IV_B;
      round <= 5'd0;
      done <= 1'b0;
    end else begin
      if (start) begin
        a <= IV_A;
        // BUG: missing `b <= IV_B;`
        round <= 5'd0;
        done <= 1'b0;
        $display("sha512: new message");
      end else if (w_valid && !done) begin
        a <= a + (w ^ b);
        b <= b ^ (a >> 7);
        round <= round + 5'd1;
        if (round == ROUNDS - 1) begin
          done <= 1'b1;
          digest <= (a + (w ^ b)) ^ (b ^ (a >> 7));
          $display("sha512: digest ready");
        end
      end
    end
  end
endmodule
