// AXI4-Lite register-file endpoint (Xilinx example style).
//
// A well-behaved AXI-Lite slave must accept the write address and the
// write data independently, in either order, and respond once it has both.
//
// BUG S1 (protocol violation): this slave only completes a write when
// AWVALID and WVALID happen to be high in the same cycle, and it never
// asserts the ready signals otherwise — a master that staggers the two
// channels hangs forever and an AXI protocol monitor reports the stall.
module axil_demo (
  input clk,
  input rst,
  input awvalid,
  input [3:0] awaddr,
  input wvalid,
  input [31:0] wdata,
  output reg awready,
  output reg wready,
  output reg bvalid,
  input bready,
  input arvalid,
  input [3:0] araddr,
  output reg arready,
  output reg rvalid,
  output reg [31:0] rdata
);
  localparam W_IDLE = 2'd0;
  localparam W_RESP = 2'd1;

  reg [31:0] regs [0:15];
  reg [1:0] wr_state;

  always @(posedge clk) begin
    if (rst) begin
      wr_state <= W_IDLE;
      awready <= 1'b0;
      wready <= 1'b0;
      bvalid <= 1'b0;
      arready <= 1'b0;
      rvalid <= 1'b0;
    end else begin
      awready <= 1'b0;
      wready <= 1'b0;
      if (bvalid && bready) bvalid <= 1'b0;
      // BUG: the write is not accepted (and BVALID not produced) until the
      // master already presents BREADY — but AXI forbids a slave from
      // making BVALID wait for BREADY. A master that raises BREADY only
      // after seeing BVALID deadlocks.
      if (awvalid && wvalid && !bvalid && bready) begin
        regs[awaddr] <= wdata;
        awready <= 1'b1;
        wready <= 1'b1;
        bvalid <= 1'b1;
        $display("axil: write [%0d] = %h", awaddr, wdata);
      end
      case (wr_state)
        W_IDLE: if (awvalid && wvalid) wr_state <= W_RESP;
        W_RESP: if (bready) begin
          wr_state <= W_IDLE;
          $display("axil: write response handshake");
        end
        default: wr_state <= W_IDLE;
      endcase
      arready <= 1'b0;
      if (rvalid) rvalid <= 1'b0;
      if (arvalid && !rvalid) begin
        rdata <= regs[araddr];
        arready <= 1'b1;
        rvalid <= 1'b1;
        $display("axil: read [%0d]", araddr);
      end
    end
  end
endmodule
