// Store-and-forward frame FIFO with mid-frame drop (generic platform).
//
// Every beat is first captured into `in_reg`; if the FIFO fills up while a
// frame is streaming in, the rest of the frame is intentionally discarded
// from `in_reg` and the partial frame is rewound (`drop` set).
//
// BUG D11 (failure-to-update): `drop` is never cleared when the next frame
// starts, so once one frame has been dropped every later frame is silently
// discarded too.
module frame_fifo_d11 (
  input clk,
  input rst,
  input [7:0] s_data,
  input s_valid,
  input s_last,
  input m_ready,
  output [7:0] m_data,
  output m_valid,
  output full
);
  reg [7:0] mem [0:15];
  reg [4:0] wr_ptr;
  reg [4:0] frame_start;
  reg [4:0] rd_ptr;
  localparam RX_IDLE = 2'd0;
  localparam RX_BUSY = 2'd1;

  reg [1:0] rx_state;
  reg [7:0] in_reg;
  reg in_reg_v;
  reg in_reg_last;
  reg drop;

  assign full = (wr_ptr - rd_ptr) >= 5'd16;
  assign m_valid = frame_start != rd_ptr;
  assign m_data = mem[rd_ptr[3:0]];

  always @(posedge clk) begin
    if (rst) begin
      rx_state <= RX_IDLE;
      wr_ptr <= 5'd0;
      frame_start <= 5'd0;
      rd_ptr <= 5'd0;
      in_reg_v <= 1'b0;
      drop <= 1'b0;
    end else begin
      if (s_valid) begin
        in_reg <= s_data;
        in_reg_v <= 1'b1;
        in_reg_last <= s_last;
      end else begin
        in_reg_v <= 1'b0;
      end
      if (in_reg_v) begin
        if (drop) begin
          // Intentional discard of the rest of a dropped frame.
          if (in_reg_last) begin
            wr_ptr <= frame_start;
            $display("fifo: frame dropped, rewound to %0d", frame_start);
            // BUG: missing `drop <= 1'b0;` here.
          end
        end else if (full) begin
          drop <= 1'b1;
          $display("fifo: full mid-frame, dropping");
        end else begin
          mem[wr_ptr[3:0]] <= in_reg;
          wr_ptr <= wr_ptr + 5'd1;
          if (in_reg_last) begin
            frame_start <= wr_ptr + 5'd1;
            $display("fifo: frame committed at %0d", wr_ptr + 5'd1);
          end
        end
      end
      case (rx_state)
        RX_IDLE: if (s_valid) rx_state <= RX_BUSY;
        RX_BUSY: if (s_valid && s_last) begin
          rx_state <= RX_IDLE;
          $display("fifo: frame tail seen");
        end
        default: rx_state <= RX_IDLE;
      endcase
      if (m_valid && m_ready) rd_ptr <= rd_ptr + 5'd1;
    end
  end
endmodule
