// AXI-Stream FIFO with an input skid register (verilog-axis style).
//
// Incoming words are accepted into the skid register `s_reg` whenever the
// (registered) `s_ready` said there was room, and drain into the RAM when
// it is not full. Registering `s_ready` closes timing at 200 MHz.
//
// BUG C4 (signal asynchrony): `s_ready` is computed from the RAM occupancy
// alone, one cycle stale and blind to the word already parked in the skid
// register. When the RAM fills while the skid is occupied, upstream still
// sees ready, pushes once more, and the parked word is overwritten — data
// and its handshake signal are out of sync (§3.3.3).
module axis_fifo (
  input clk,
  input rst,
  input [7:0] s_data,
  input s_valid,
  output s_ready,
  input m_ready,
  output reg [7:0] m_data,
  output reg m_valid
);
  reg [7:0] mem [0:15];
  reg [4:0] wr_ptr;
  reg [4:0] rd_ptr;
  reg [7:0] s_reg;
  reg s_reg_v;
  reg s_ready_r;

  wire [4:0] count;
  assign count = wr_ptr - rd_ptr;
  assign s_ready = s_ready_r;

  always @(posedge clk) begin
    if (rst) begin
      wr_ptr <= 5'd0;
      rd_ptr <= 5'd0;
      s_reg_v <= 1'b0;
      s_ready_r <= 1'b0;
      m_valid <= 1'b0;
    end else begin
      // BUG: ignores the skid register; should keep one slot of margin,
      // e.g. `s_ready_r <= count < 5'd14;`
      s_ready_r <= count < 5'd16;

      // Drain the skid register into the RAM.
      if (s_reg_v && count < 5'd16) begin
        mem[wr_ptr[3:0]] <= s_reg;
        wr_ptr <= wr_ptr + 5'd1;
        s_reg_v <= 1'b0;
      end
      // Accept a new word (overwrites the skid register!).
      if (s_valid && s_ready_r) begin
        s_reg <= s_data;
        s_reg_v <= 1'b1;
        $display("axis_fifo: accept %h count=%0d", s_data, count);
      end
      // Output side.
      m_valid <= 1'b0;
      if (m_ready && count != 5'd0) begin
        m_data <= mem[rd_ptr[3:0]];
        m_valid <= 1'b1;
        rd_ptr <= rd_ptr + 5'd1;
      end
    end
  end
endmodule
