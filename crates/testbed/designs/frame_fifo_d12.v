// Store-and-forward frame FIFO with end-of-frame marker (generic platform).
//
// The output side presents `m_last` on the final word of each frame.
//
// BUG D12 (failure-to-update): `m_last` is set when a frame boundary is
// reached but never cleared afterwards, so every subsequent word is also
// flagged as a frame end and downstream sees a burst of one-word frames.
module frame_fifo_d12 (
  input clk,
  input rst,
  input [7:0] s_data,
  input s_valid,
  input s_last,
  input m_ready,
  output reg [7:0] m_data,
  output reg m_valid,
  output reg m_last,
  output full
);
  reg [7:0] mem [0:15];
  reg [15:0] last_flags;
  reg [4:0] wr_ptr;
  reg [4:0] rd_ptr;

  assign full = (wr_ptr - rd_ptr) >= 5'd16;

  always @(posedge clk) begin
    if (rst) begin
      wr_ptr <= 5'd0;
      rd_ptr <= 5'd0;
      m_valid <= 1'b0;
      m_last <= 1'b0;
      last_flags <= 16'd0;
    end else begin
      if (s_valid && !full) begin
        mem[wr_ptr[3:0]] <= s_data;
        last_flags[wr_ptr[3:0]] <= s_last;
        wr_ptr <= wr_ptr + 5'd1;
      end
      m_valid <= 1'b0;
      if (m_ready && wr_ptr != rd_ptr) begin
        m_data <= mem[rd_ptr[3:0]];
        m_valid <= 1'b1;
        if (last_flags[rd_ptr[3:0]]) begin
          m_last <= 1'b1;
          $display("fifo: frame boundary at %0d", rd_ptr);
        end
        // BUG: missing `else m_last <= 1'b0;`
        rd_ptr <= rd_ptr + 5'd1;
      end
    end
  end
endmodule
