// 2-port AXI-Stream switch (verilog-axis style, generic platform).
//
// The first word of each frame is a header whose top two bits select the
// destination port.
//
// BUG D8 (misindexing): the destination is extracted from header bits
// [5:4] instead of [7:6], so frames are routed by payload bits and end up
// on the wrong port.
module axis_switch (
  input clk,
  input rst,
  input [7:0] s_data,
  input s_valid,
  input s_last,
  output reg [7:0] m0_data,
  output reg m0_valid,
  output reg [7:0] m1_data,
  output reg m1_valid
);
  reg in_frame;
  reg dest;
  // One-hot route-phase tracker (an FSM the heuristics miss).
  reg [3:0] route_phase;

  wire sel;
  assign sel = s_data[5];   // BUG: should be s_data[7]

  always @(posedge clk) begin
    if (rst) begin
      in_frame <= 1'b0;
      m0_valid <= 1'b0;
      m1_valid <= 1'b0;
      route_phase <= 4'b0001;
    end else begin
      if (s_valid && route_phase[1]) $display("switch: phase beat");
      if (s_valid) route_phase <= {route_phase[2:0], route_phase[3]};
      m0_valid <= 1'b0;
      m1_valid <= 1'b0;
      if (s_valid) begin
        if (!in_frame) begin
          dest <= sel;
          in_frame <= !s_last;
          if (sel) begin
            m1_data <= s_data;
            m1_valid <= 1'b1;
          end else begin
            m0_data <= s_data;
            m0_valid <= 1'b1;
          end
          $display("switch: frame to port %0d", sel);
        end else begin
          in_frame <= !s_last;
          if (dest) begin
            m1_data <= s_data;
            m1_valid <= 1'b1;
          end else begin
            m0_data <= s_data;
            m0_valid <= 1'b1;
          end
        end
      end
    end
  end
endmodule
