// Reed-Solomon decoder front-end (Intel HARP accelerator style).
//
// Symbols stream in ({corrupt flag, data}); good symbols are staged in
// `hold`, accumulated into the block syndrome, and stored into the output
// buffer; corrupt symbols are intentionally discarded from `hold`. The host
// drains the corrected block through `dout`.
//
// BUG D1 (buffer overflow): `obuf` is sized for 10 symbols but a block
// carries BLOCK = 12; writes at indexes 10 and 11 overflow the buffer and
// are silently dropped, so two symbols of every block are lost.
module rsd (
  input clk,
  input rst,
  input [8:0] din,        // bit 8: corrupt flag, bits [7:0]: symbol
  input din_valid,
  input rd_en,
  output reg [7:0] dout,
  output reg dout_valid,
  output reg [7:0] syndrome,
  output reg block_done
);
  localparam BLOCK = 12;

  reg [7:0] obuf [0:9];   // BUG: should hold BLOCK = 12 symbols
  reg [3:0] wr_idx;
  reg [3:0] rd_idx;
  reg [7:0] hold;         // staging; corrupt symbols dropped from here
  reg hold_v;
  reg hold_ok;

  always @(posedge clk) begin
    if (rst) begin
      wr_idx <= 4'd0;
      rd_idx <= 4'd0;
      syndrome <= 8'd0;
      block_done <= 1'b0;
      dout_valid <= 1'b0;
      hold_v <= 1'b0;
    end else begin
      dout_valid <= 1'b0;
      if (din_valid) begin
        hold <= din[7:0];
        hold_ok <= !din[8];
        hold_v <= 1'b1;
        if (din[8]) $display("rsd: corrupt symbol %h discarded", din);
      end else begin
        hold_v <= 1'b0;
      end
      if (hold_v && hold_ok) begin
        obuf[wr_idx] <= hold;
        syndrome <= syndrome ^ hold;
        if (wr_idx == BLOCK - 1) begin
          wr_idx <= 4'd0;
          block_done <= 1'b1;
          $display("rsd: block complete, syndrome=%h", syndrome ^ hold);
        end else begin
          wr_idx <= wr_idx + 4'd1;
        end
      end
      if (rd_en) begin
        dout <= obuf[rd_idx];
        dout_valid <= 1'b1;
        if (rd_idx == BLOCK - 1) rd_idx <= 4'd0;
        else rd_idx <= rd_idx + 4'd1;
      end
    end
  end
endmodule
