// One FFT butterfly stage with twiddle scaling (ZipCPU-style, generic).
//
// BUG D6 (bit truncation): the scaled product should be computed as
// `16'(prod >> 4)` but was written `16'(prod) >> 4`, cutting off the
// meaningful bits [19:16] before the shift — the same shape as the paper's
// §3.2.2 example `left <= 42'(right) >> 6`.
module fft_stage (
  input clk,
  input rst,
  input [15:0] ar,
  input [15:0] br,
  input [7:0] twiddle,
  input in_valid,
  output reg [15:0] yr,
  output reg [15:0] zr,
  output reg out_valid
);
  reg [23:0] prod;
  reg [15:0] ar_d;
  reg stage2;

  always @(posedge clk) begin
    if (rst) begin
      out_valid <= 1'b0;
      stage2 <= 1'b0;
    end else begin
      out_valid <= 1'b0;
      if (in_valid) begin
        prod <= {8'd0, br} * {16'd0, twiddle};
        ar_d <= ar;
        stage2 <= 1'b1;
      end else begin
        stage2 <= 1'b0;
      end
      if (stage2) begin
        yr <= ar_d + (16'(prod) >> 4);   // BUG: should be 16'(prod >> 4)
        zr <= ar_d - (16'(prod) >> 4);
        out_valid <= 1'b1;
        $display("fft: butterfly out");
      end
    end
  end
endmodule
