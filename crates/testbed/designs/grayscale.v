// Grayscale image accelerator (Intel HARP, the paper's §6.3 case study).
//
// A read FSM pulls NUM_PIXELS RGB pixels from host memory, converts each to
// 8-bit gray, and stages results in a 12-entry line buffer; a write FSM
// drains completed entries back to the host. `out_hold` speculatively
// prefetches the next result every cycle (intentionally overwritten when
// the host is not reading).
//
// BUG D2 (buffer overflow): the 4-bit `wr_ptr` is allowed to run 0..15 but
// the line buffer only has 12 entries; the developer forgot the wrap at 11,
// so 4 of every 16 stores overflow and are dropped. Their `fresh` bits are
// never set, the write FSM waits forever for them, and the accelerator
// hangs with the read FSM in RD_FINISH and the write FSM in WR_DATA.
module grayscale (
  input clk,
  input rst,
  input start,
  input [23:0] pix_in,     // {r, g, b}
  input pix_in_valid,
  input host_rd,
  output reg [7:0] pix_out,
  output reg pix_out_valid,
  output [1:0] rd_state_dbg,
  output [1:0] wr_state_dbg,
  output reg done
);
  localparam NUM_PIXELS = 24;
  localparam LINE = 12;

  localparam RD_IDLE = 2'd0;
  localparam RD_DATA = 2'd1;
  localparam RD_FINISH = 2'd2;
  localparam WR_IDLE = 2'd0;
  localparam WR_DATA = 2'd1;
  localparam WR_FINISH = 2'd2;

  reg [1:0] rd_state;
  reg [1:0] wr_state;
  reg [7:0] linebuf [0:11];
  reg [11:0] fresh;
  reg [3:0] wr_ptr;
  reg [3:0] rd_ptr;
  reg [5:0] in_count;
  reg [5:0] out_count;
  reg [7:0] out_hold;

  wire [7:0] gray;
  assign gray = (pix_in[23:16] >> 2) + (pix_in[15:8] >> 1) + (pix_in[7:0] >> 2);
  assign rd_state_dbg = rd_state;
  assign wr_state_dbg = wr_state;

  always @(posedge clk) begin
    if (rst) begin
      rd_state <= RD_IDLE;
      wr_state <= WR_IDLE;
      fresh <= 12'd0;
      wr_ptr <= 4'd0;
      rd_ptr <= 4'd0;
      in_count <= 6'd0;
      out_count <= 6'd0;
      pix_out_valid <= 1'b0;
      done <= 1'b0;
    end else begin
      pix_out_valid <= 1'b0;

      // Read FSM: accept pixels from the host.
      case (rd_state)
        RD_IDLE: if (start) begin
          rd_state <= RD_DATA;
          $display("grayscale: read FSM starts");
        end
        RD_DATA: if (pix_in_valid) begin
          linebuf[wr_ptr] <= gray;
          fresh[wr_ptr] <= 1'b1;
          wr_ptr <= wr_ptr + 4'd1;   // BUG: missing wrap at LINE-1
          in_count <= in_count + 6'd1;
          if (in_count == NUM_PIXELS - 1) begin
            rd_state <= RD_FINISH;
            $display("grayscale: read FSM finished after %0d pixels", in_count + 6'd1);
          end
        end
        default: rd_state <= rd_state;
      endcase

      // Speculative prefetch of the next result (intentional overwrite).
      out_hold <= linebuf[rd_ptr];

      // Write FSM: return gray pixels to the host.
      case (wr_state)
        WR_IDLE: if (in_count != 6'd0) wr_state <= WR_DATA;
        WR_DATA: begin
          if (host_rd && fresh[rd_ptr]) begin
            pix_out <= out_hold;
            pix_out_valid <= 1'b1;
            fresh[rd_ptr] <= 1'b0;
            if (rd_ptr == LINE - 1) rd_ptr <= 4'd0;
            else rd_ptr <= rd_ptr + 4'd1;
            out_count <= out_count + 6'd1;
            if (out_count == NUM_PIXELS - 1) begin
              wr_state <= WR_FINISH;
              $display("grayscale: write FSM finished");
            end
          end
        end
        WR_FINISH: done <= 1'b1;
        default: wr_state <= WR_IDLE;
      endcase
    end
  end
endmodule
