//! Campaign jobs: one simulation each, verdict + counters out.

use crate::report::{CampaignReport, JobRecord};
use crate::runner::run_sharded;
use crate::CampaignError;
use hwdbg_ip::StdModels;
use hwdbg_obs::SimCounters;
use hwdbg_sim::{
    run_with_faults, CompiledDesign, FaultPlan, RegInit, SimConfig, SimError, Simulator,
};
use hwdbg_testbed::{workloads, BugId, Outcome};
use std::sync::Arc;
use std::time::Instant;

/// How a job drives its simulator.
#[derive(Debug, Clone)]
pub enum Drive {
    /// Run the bug's testbed workload (pass/fail verdict). Faults do not
    /// compose with workload drives — the workload owns the clocking.
    Workload(BugId),
    /// Free-run `cycles` edges of `clock`, optionally poking stimulus
    /// before every edge and applying the job's fault plan.
    FreeRun {
        /// The clock signal to step.
        clock: String,
        /// How many cycles to run.
        cycles: u64,
        /// Per-cycle stimulus pokes (resolved to interned IDs once).
        stim: Vec<Stim>,
    },
}

/// One per-cycle stimulus assignment.
#[derive(Debug, Clone)]
pub struct Stim {
    /// Target signal name.
    pub name: String,
    /// Value driven before each edge.
    pub value: StimValue,
}

/// The value a [`Stim`] drives.
#[derive(Debug, Clone, Copy)]
pub enum StimValue {
    /// The same constant every cycle.
    Const(u64),
    /// The current cycle index (0, 1, 2, ...) — a free counter pattern.
    Counter,
}

/// One simulation job: which compiled design, which initialization,
/// which fault plan, and how to drive it. Jobs are `Send + Sync` (the
/// compiled design is shared by `Arc`) so the pool can hand them to any
/// worker.
#[derive(Debug, Clone)]
pub struct Job {
    /// Design label in the report (bug ID or file stem).
    pub design: String,
    /// Fault label in the report (`none`, a fault class, or a spec label).
    pub fault: String,
    /// Seed label in the report (`zero` or the numeric seed).
    pub seed: String,
    /// The shared compiled design.
    pub shared: Arc<CompiledDesign>,
    /// Register/memory initialization for this job.
    pub init: RegInit,
    /// Fault plan injected while the job runs (free-run drives only).
    pub plan: Option<FaultPlan>,
    /// How the simulator is driven.
    pub drive: Drive,
}

/// What a finished job reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Workload drive: the design behaved correctly.
    Pass,
    /// Workload drive: the design misbehaved (the bug reproduced).
    Fail,
    /// Free-run drive: the run completed, faults and all.
    Completed,
    /// The simulator returned a typed error (never a panic).
    Error,
}

impl Verdict {
    /// Stable lowercase name used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Completed => "completed",
            Verdict::Error => "error",
        }
    }
}

/// A named batch of jobs ready to run.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Report name (spec `name` line, or the client's).
    pub name: String,
    /// The expanded job matrix, in deterministic spec order.
    pub jobs: Vec<Job>,
}

impl Campaign {
    /// Runs the campaign on `workers` threads with work stealing and
    /// aggregates one report. The deterministic section of the report
    /// ([`CampaignReport::results_json`]) is byte-identical for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Only scheduling failures (a panicked worker) error out; per-job
    /// simulator errors become [`Verdict::Error`] records.
    pub fn run(&self, workers: usize) -> Result<CampaignReport, CampaignError> {
        let out = run_sharded(&self.jobs, workers, |_, job| run_job(job))?;
        Ok(CampaignReport::new(
            self.name.clone(),
            out.results,
            workers.clamp(1, self.jobs.len().max(1)),
            out.wall,
            out.steals,
            out.job_wall,
        ))
    }

    /// The legacy serial loop: same jobs, same aggregation, no queue and
    /// no threads. Exists as the reference implementation the determinism
    /// suite compares the pool against.
    pub fn run_serial(&self) -> Result<CampaignReport, CampaignError> {
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(self.jobs.len());
        let mut job_wall = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            let j0 = Instant::now();
            results.push(run_job(job));
            job_wall.push(j0.elapsed());
        }
        Ok(CampaignReport::new(
            self.name.clone(),
            results,
            1,
            t0.elapsed(),
            0,
            job_wall,
        ))
    }
}

/// Executes one job to a record. Infallible by construction: every
/// simulator error is a typed [`Verdict::Error`] outcome, mirroring the
/// legacy fault suite's "completes or typed error, never a panic"
/// contract.
pub(crate) fn run_job(job: &Job) -> JobRecord {
    let config = SimConfig {
        init: job.init,
        ..SimConfig::default()
    }
    .with_metrics(true);
    let record = |verdict: Verdict, detail: String, cycles: u64, counters: SimCounters| JobRecord {
        design: job.design.clone(),
        fault: job.fault.clone(),
        seed: job.seed.clone(),
        verdict,
        detail,
        cycles,
        counters,
    };
    let mut sim = match Simulator::from_compiled(Arc::clone(&job.shared), &StdModels, config) {
        Ok(s) => s,
        Err(e) => return record(Verdict::Error, e.to_string(), 0, SimCounters::default()),
    };
    let (verdict, detail, cycles) = match &job.drive {
        Drive::Workload(id) => match workloads::run(*id, &mut sim) {
            Ok(Outcome::Pass) => (Verdict::Pass, String::new(), steps_of(&sim)),
            Ok(Outcome::Fail { symptom, detail }) => (
                Verdict::Fail,
                format!("{symptom:?}: {detail}"),
                steps_of(&sim),
            ),
            Err(e) => (Verdict::Error, e.to_string(), steps_of(&sim)),
        },
        Drive::FreeRun {
            clock,
            cycles,
            stim,
        } => match free_run(&mut sim, clock, *cycles, stim, job.plan.as_ref()) {
            Ok(ran) => (Verdict::Completed, String::new(), ran),
            Err(e) => (Verdict::Error, e.to_string(), sim.cycle(clock)),
        },
    };
    let counters = sim.counters().copied().unwrap_or_default();
    record(verdict, detail, cycles, counters)
}

/// Total steps the simulator took (the workload picks its own clock, so
/// report the step counter rather than guessing a clock name).
fn steps_of(sim: &Simulator) -> u64 {
    sim.counters().map(|c| c.steps).unwrap_or_default()
}

fn free_run(
    sim: &mut Simulator,
    clock: &str,
    cycles: u64,
    stim: &[Stim],
    plan: Option<&FaultPlan>,
) -> Result<u64, SimError> {
    if stim.is_empty() {
        // No stimulus: identical call shape to the legacy fault suite.
        return match plan {
            Some(p) => run_with_faults(sim, clock, cycles, p),
            None => {
                sim.run(clock, cycles)?;
                Ok(sim.cycle(clock))
            }
        };
    }
    let names: Vec<&str> = stim.iter().map(|s| s.name.as_str()).collect();
    let splan = sim.stimulus_plan(&names)?;
    let mut ran = 0;
    for cycle in 0..cycles {
        if sim.finished() {
            break;
        }
        for (i, s) in stim.iter().enumerate() {
            let v = match s.value {
                StimValue::Const(c) => c,
                StimValue::Counter => cycle,
            };
            sim.poke_id_u64(splan.id(i), v);
        }
        match plan {
            Some(p) => hwdbg_sim::step_with_faults(sim, clock, p)?,
            None => sim.step(clock)?,
        }
        ran += 1;
    }
    Ok(ran)
}
