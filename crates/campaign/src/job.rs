//! Campaign jobs: one simulation each, verdict + counters out.

use crate::report::{CampaignReport, JobRecord};
use crate::runner::{panic_message, run_sharded};
use crate::CampaignError;
use hwdbg_ip::StdModels;
use hwdbg_obs::SimCounters;
use hwdbg_sim::{
    run_with_faults, BlackboxFactory, CompiledDesign, FaultPlan, RegInit, SimConfig, SimError,
    Simulator,
};
use hwdbg_testbed::{workloads, BugId, Outcome};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

thread_local! {
    /// Per-worker engine pool: one warm [`Simulator`] per compiled design,
    /// keyed by the `Arc<CompiledDesign>` allocation address. A pooled
    /// simulator holds its own clone of that `Arc`, so the allocation (and
    /// therefore the key) cannot be reused by a different design while the
    /// entry exists. Jobs *take* the engine out, [`Simulator::reset`] it to
    /// the job's config, run, and put it back; a panicking job simply drops
    /// the engine (it is out of the pool for the duration), so crashed
    /// state never leaks into a later job.
    static ENGINE_POOL: RefCell<BTreeMap<usize, Simulator>> = const { RefCell::new(BTreeMap::new()) };
}

/// A warm engine for `job`: pooled and reset when this thread has run the
/// design before, freshly compiled otherwise. `reset` reproduces
/// construction byte-for-byte (same RNG draw order for random init), so
/// pooled and cold runs yield identical records.
fn pooled_simulator(job: &Job, config: SimConfig) -> Result<Simulator, SimError> {
    let key = Arc::as_ptr(&job.shared) as usize;
    if let Some(mut sim) = ENGINE_POOL.with(|p| p.borrow_mut().remove(&key)) {
        sim.reset(job.models.factory(), config)?;
        return Ok(sim);
    }
    Simulator::from_compiled(Arc::clone(&job.shared), job.models.factory(), config)
}

/// Returns a finished job's engine to this worker's pool. Safe even after
/// a typed simulator error — the next take resets it wholesale.
fn return_simulator(job: &Job, sim: Simulator) {
    let key = Arc::as_ptr(&job.shared) as usize;
    ENGINE_POOL.with(|p| {
        p.borrow_mut().insert(key, sim);
    });
}

/// How a job drives its simulator.
#[derive(Debug, Clone)]
pub enum Drive {
    /// Run the bug's testbed workload (pass/fail verdict). Faults do not
    /// compose with workload drives — the workload owns the clocking.
    Workload(BugId),
    /// Free-run `cycles` edges of `clock`, optionally poking stimulus
    /// before every edge and applying the job's fault plan.
    FreeRun {
        /// The clock signal to step.
        clock: String,
        /// How many cycles to run.
        cycles: u64,
        /// Per-cycle stimulus pokes (resolved to interned IDs once).
        stim: Vec<Stim>,
    },
}

/// One per-cycle stimulus assignment.
#[derive(Debug, Clone)]
pub struct Stim {
    /// Target signal name.
    pub name: String,
    /// Value driven before each edge.
    pub value: StimValue,
}

/// The value a [`Stim`] drives.
#[derive(Debug, Clone, Copy)]
pub enum StimValue {
    /// The same constant every cycle.
    Const(u64),
    /// The current cycle index (0, 1, 2, ...) — a free counter pattern.
    Counter,
}

/// The blackbox model factory a job's simulator is built with. Shared by
/// `Arc` so jobs stay cheap to clone and `Send + Sync`; defaults to the
/// standard IP library. Campaigns that exercise crash isolation inject a
/// deliberately panicking model through [`ModelSet::custom`].
#[derive(Clone)]
pub struct ModelSet(Arc<dyn BlackboxFactory + Send + Sync>);

impl ModelSet {
    /// The standard IP model library (`hwdbg-ip`).
    pub fn std() -> Self {
        ModelSet(Arc::new(StdModels))
    }

    /// A custom factory — e.g. a fault-injection wrapper around the
    /// standard models.
    pub fn custom(factory: Arc<dyn BlackboxFactory + Send + Sync>) -> Self {
        ModelSet(factory)
    }

    pub(crate) fn factory(&self) -> &dyn BlackboxFactory {
        &*self.0
    }
}

impl Default for ModelSet {
    fn default() -> Self {
        ModelSet::std()
    }
}

impl std::fmt::Debug for ModelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ModelSet(..)")
    }
}

/// One simulation job: which compiled design, which initialization,
/// which fault plan, and how to drive it. Jobs are `Send + Sync` (the
/// compiled design is shared by `Arc`) so the pool can hand them to any
/// worker.
#[derive(Debug, Clone)]
pub struct Job {
    /// Design label in the report (bug ID or file stem).
    pub design: String,
    /// Fault label in the report (`none`, a fault class, or a spec label).
    pub fault: String,
    /// Seed label in the report (`zero` or the numeric seed).
    pub seed: String,
    /// The shared compiled design.
    pub shared: Arc<CompiledDesign>,
    /// Register/memory initialization for this job.
    pub init: RegInit,
    /// Fault plan injected while the job runs (free-run drives only).
    pub plan: Option<FaultPlan>,
    /// How the simulator is driven.
    pub drive: Drive,
    /// Blackbox models the simulator is built with.
    pub models: ModelSet,
}

/// What a finished job reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Workload drive: the design behaved correctly.
    Pass,
    /// Workload drive: the design misbehaved (the bug reproduced).
    Fail,
    /// Free-run drive: the run completed, faults and all.
    Completed,
    /// The simulator returned a typed error (never a panic).
    Error,
    /// The job body panicked; the panic was caught, the worker survived,
    /// and the payload is in the record's `detail`.
    Crashed,
    /// The job's wall-clock budget ([`RunOptions::job_timeout`]) expired
    /// before it finished — a hung or livelocked design.
    TimedOut,
}

impl Verdict {
    /// Stable lowercase name used in report JSON.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
            Verdict::Completed => "completed",
            Verdict::Error => "error",
            Verdict::Crashed => "crashed",
            Verdict::TimedOut => "timed-out",
        }
    }

    /// Inverse of [`name`](Self::name), used when replaying journals.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "pass" => Some(Verdict::Pass),
            "fail" => Some(Verdict::Fail),
            "completed" => Some(Verdict::Completed),
            "error" => Some(Verdict::Error),
            "crashed" => Some(Verdict::Crashed),
            "timed-out" => Some(Verdict::TimedOut),
            _ => None,
        }
    }
}

/// Fault-tolerance knobs for a campaign run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Per-job wall-clock budget. When set, each simulator is armed with
    /// a cooperative deadline ([`SimConfig::with_timeout`]) and a job
    /// that exceeds it becomes a [`Verdict::TimedOut`] record instead of
    /// wedging its worker. `None` (the default) runs unbounded, exactly
    /// like the pre-watchdog engine.
    ///
    /// Timed-out records are the one place wall clocks leak into the
    /// results section: their `cycles` and counters depend on how far the
    /// job got before the deadline, so they vary run to run. Pass/fail/
    /// completed/error/crashed records stay fully deterministic.
    pub job_timeout: Option<Duration>,
    /// How many times a crashed or timed-out job is rerun before its
    /// outcome is accepted. Retries target transient classes (scheduler
    /// jitter pushing a job over its deadline); a deterministic panic
    /// crashes identically every attempt and the final record reports
    /// how many retries were burned.
    pub retries: u32,
}

/// A named batch of jobs ready to run.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Report name (spec `name` line, or the client's).
    pub name: String,
    /// The expanded job matrix, in deterministic spec order.
    pub jobs: Vec<Job>,
}

impl Campaign {
    /// Runs the campaign on `workers` threads with work stealing and
    /// aggregates one report. The deterministic section of the report
    /// ([`CampaignReport::results_json`]) is byte-identical for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Never errors in practice: job panics become [`Verdict::Crashed`]
    /// records, simulator errors become [`Verdict::Error`] records, and
    /// dead workers are recovered by the coordinator. The `Result` is
    /// kept for the richer entry points ([`run_with`](Self::run_with))
    /// that validate resume state.
    pub fn run(&self, workers: usize) -> Result<CampaignReport, CampaignError> {
        self.run_with(workers, RunOptions::default(), &BTreeMap::new(), |_, _| {})
    }

    /// The full-control entry point: fault-tolerance options, previously
    /// completed records to skip (resume), and a `retire` hook that fires
    /// once per freshly-run job as it completes — in scheduling order,
    /// not input order — for streaming consumers (journal, `--out`).
    ///
    /// `completed` maps job indices to records replayed from a journal;
    /// those jobs are not rerun and their records are spliced into the
    /// report at their original positions, so a resumed run's
    /// [`CampaignReport::results_json`] is byte-identical to an
    /// uninterrupted one.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Journal`] when `completed` references a job index
    /// outside this campaign (a journal/spec mismatch).
    pub fn run_with(
        &self,
        workers: usize,
        opts: RunOptions,
        completed: &BTreeMap<usize, JobRecord>,
        retire: impl Fn(usize, &JobRecord) + Sync,
    ) -> Result<CampaignReport, CampaignError> {
        if let Some(&bad) = completed.keys().find(|&&i| i >= self.jobs.len()) {
            return Err(CampaignError::Journal(format!(
                "journal references job {bad} but the campaign has only {} jobs",
                self.jobs.len()
            )));
        }
        let todo: Vec<usize> = (0..self.jobs.len())
            .filter(|i| !completed.contains_key(i))
            .collect();
        let out = run_sharded(
            &todo,
            workers,
            |_, &gi| run_job(&self.jobs[gi], &opts),
            |_, &gi, msg| crashed_record(&self.jobs[gi], msg, 0),
            |li, r| retire(todo[li], r),
        );
        // Splice fresh results and replayed records back into input-job
        // order — the determinism boundary for resumed runs.
        let mut records: Vec<Option<JobRecord>> = vec![None; self.jobs.len()];
        let mut job_wall = vec![Duration::ZERO; self.jobs.len()];
        for ((gi, r), d) in todo.iter().zip(out.results).zip(out.job_wall) {
            records[*gi] = Some(r);
            job_wall[*gi] = d;
        }
        for (gi, r) in completed {
            records[*gi] = Some(r.clone());
        }
        let records: Vec<JobRecord> = records.into_iter().flatten().collect();
        debug_assert_eq!(records.len(), self.jobs.len());
        Ok(CampaignReport::new(
            self.name.clone(),
            records,
            workers.clamp(1, self.jobs.len().max(1)),
            out.wall,
            out.steals,
            job_wall,
            out.worker_deaths,
        ))
    }

    /// The legacy serial loop: same jobs, same aggregation, no queue and
    /// no threads. Exists as the reference implementation the determinism
    /// suite compares the pool against.
    pub fn run_serial(&self) -> Result<CampaignReport, CampaignError> {
        let opts = RunOptions::default();
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(self.jobs.len());
        let mut job_wall = Vec::with_capacity(self.jobs.len());
        for job in &self.jobs {
            let j0 = Instant::now();
            results.push(run_job(job, &opts));
            job_wall.push(j0.elapsed());
        }
        Ok(CampaignReport::new(
            self.name.clone(),
            results,
            1,
            t0.elapsed(),
            0,
            job_wall,
            0,
        ))
    }
}

/// A record for a job whose body panicked: the payload lands in `detail`
/// and the crash shows up in the counter plane.
fn crashed_record(job: &Job, message: String, retries: u32) -> JobRecord {
    let counters = SimCounters {
        jobs_crashed: 1,
        jobs_retried: u64::from(retries),
        ..SimCounters::default()
    };
    JobRecord {
        design: job.design.clone(),
        fault: job.fault.clone(),
        seed: job.seed.clone(),
        verdict: Verdict::Crashed,
        detail: message,
        cycles: 0,
        counters,
        retries,
    }
}

/// Executes one job to a record, with panic isolation and bounded retry.
/// Infallible by construction: simulator errors are [`Verdict::Error`],
/// panics are [`Verdict::Crashed`], expired deadlines are
/// [`Verdict::TimedOut`] — never an abort, never a lost report.
pub(crate) fn run_job(job: &Job, opts: &RunOptions) -> JobRecord {
    let mut attempt = 0u32;
    loop {
        let mut record = match catch_unwind(AssertUnwindSafe(|| run_job_once(job, opts))) {
            Ok(r) => r,
            Err(payload) => crashed_record(job, panic_message(payload.as_ref()), attempt),
        };
        let transient = matches!(record.verdict, Verdict::Crashed | Verdict::TimedOut);
        if transient && attempt < opts.retries {
            attempt += 1;
            continue;
        }
        record.retries = attempt;
        record.counters.jobs_retried = u64::from(attempt);
        return record;
    }
}

/// One attempt at a job. Every simulator error is a typed
/// [`Verdict::Error`] outcome, mirroring the legacy fault suite's
/// "completes or typed error, never a panic" contract; panics escape to
/// the retry loop in [`run_job`].
fn run_job_once(job: &Job, opts: &RunOptions) -> JobRecord {
    let mut config = SimConfig {
        init: job.init,
        ..SimConfig::default()
    }
    .with_metrics(true);
    if let Some(budget) = opts.job_timeout {
        config = config.with_timeout(budget);
    }
    let record = |verdict: Verdict, detail: String, cycles: u64, counters: SimCounters| JobRecord {
        design: job.design.clone(),
        fault: job.fault.clone(),
        seed: job.seed.clone(),
        verdict,
        detail,
        cycles,
        counters,
        retries: 0,
    };
    let mut sim = match pooled_simulator(job, config) {
        Ok(s) => s,
        Err(e) => return record(Verdict::Error, e.to_string(), 0, SimCounters::default()),
    };
    let classify = |e: SimError| match e {
        SimError::DeadlineExceeded { .. } => (Verdict::TimedOut, e.to_string()),
        other => (Verdict::Error, other.to_string()),
    };
    let (verdict, detail, cycles) = match &job.drive {
        Drive::Workload(id) => match workloads::run(*id, &mut sim) {
            Ok(Outcome::Pass) => (Verdict::Pass, String::new(), steps_of(&sim)),
            Ok(Outcome::Fail { symptom, detail }) => (
                Verdict::Fail,
                format!("{symptom:?}: {detail}"),
                steps_of(&sim),
            ),
            Err(e) => {
                let (v, d) = classify(e);
                (v, d, steps_of(&sim))
            }
        },
        Drive::FreeRun {
            clock,
            cycles,
            stim,
        } => match free_run(&mut sim, clock, *cycles, stim, job.plan.as_ref()) {
            Ok(ran) => (Verdict::Completed, String::new(), ran),
            Err(e) => {
                let (v, d) = classify(e);
                (v, d, sim.cycle(clock))
            }
        },
    };
    let mut counters = sim.counters().copied().unwrap_or_default();
    if verdict == Verdict::TimedOut {
        counters.jobs_timed_out = 1;
    }
    return_simulator(job, sim);
    record(verdict, detail, cycles, counters)
}

/// Total steps the simulator took (the workload picks its own clock, so
/// report the step counter rather than guessing a clock name).
fn steps_of(sim: &Simulator) -> u64 {
    sim.counters().map(|c| c.steps).unwrap_or_default()
}

fn free_run(
    sim: &mut Simulator,
    clock: &str,
    cycles: u64,
    stim: &[Stim],
    plan: Option<&FaultPlan>,
) -> Result<u64, SimError> {
    if stim.is_empty() {
        // No stimulus: identical call shape to the legacy fault suite.
        return match plan {
            Some(p) => run_with_faults(sim, clock, cycles, p),
            None => {
                sim.run(clock, cycles)?;
                Ok(sim.cycle(clock))
            }
        };
    }
    let names: Vec<&str> = stim.iter().map(|s| s.name.as_str()).collect();
    let splan = sim.stimulus_plan(&names)?;
    let mut ran = 0;
    for cycle in 0..cycles {
        if sim.finished() {
            break;
        }
        for (i, s) in stim.iter().enumerate() {
            let v = match s.value {
                StimValue::Const(c) => c,
                StimValue::Counter => cycle,
            };
            sim.poke_id_u64(splan.id(i), v);
        }
        match plan {
            Some(p) => hwdbg_sim::step_with_faults(sim, clock, p)?,
            None => sim.step(clock)?,
        }
        ran += 1;
    }
    Ok(ran)
}
