//! The job-matrix grammar: a line-oriented spec that expands to a
//! [`Campaign`].
//!
//! ```text
//! # one directive per line; '#' starts a comment
//! name nightly-sweep
//! design D2                    # testbed bug (workload drive)
//! design rtl/fifo.v top fifo   # RTL file (free-run drive); top defaults
//!                              # to the file's last module
//! mode run                     # workload | run (default per design kind)
//! clock clk                    # free-run clock (default: design's clock)
//! cycles 40                    # free-run length (default 100)
//! seeds zero 1 2 0xC0FFEE      # RegInit axis: zero-init or random seeds
//! seeds 1..8                   # inclusive range sweep
//! fault none                   # the fault axis; 'none' is a real job
//! fault auto                   # the four testbed fault classes
//! fault burst: stuck q 1 @ 3..9; flip v 0 @ 4   # FaultPlan text syntax,
//!                              # ';'-separated, labeled 'burst'
//! stim in_valid 1              # per-cycle poke (free-run only)
//! stim pix counter             # 0,1,2,... per cycle
//! ```
//!
//! Jobs expand design-major, then fault, then seed — a deterministic
//! order that the report preserves.

use crate::clients::MATRIX_SEED;
use crate::job::{Campaign, Drive, Job, ModelSet, Stim, StimValue};
use crate::CampaignError;
use hwdbg_dataflow::{elaborate, Design};
use hwdbg_ip::StdIpLib;
use hwdbg_sim::{CompiledDesign, FaultPlan, RegInit};
use hwdbg_testbed::{buggy_design, faults, BugId};
use std::sync::Arc;

/// A design the spec names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignRef {
    /// A testbed bug.
    Bug(BugId),
    /// An RTL file, with an optional top module override.
    File {
        /// Path to the Verilog source.
        path: String,
        /// Top module; defaults to the file's last module.
        top: Option<String>,
    },
}

/// How jobs drive their simulators (see [`Drive`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Per-design default: workload for bugs, free-run for files.
    Auto,
    /// Testbed workload drive.
    Workload,
    /// Free-running clock drive.
    Run,
}

/// One entry on the fault axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRef {
    /// No fault injected (still a job).
    None,
    /// The four testbed-derived fault classes, per design.
    Auto,
    /// An explicit labeled plan in [`FaultPlan::parse`] text syntax.
    Plan {
        /// Report label.
        label: String,
        /// `;`-separated fault lines.
        text: String,
    },
}

/// One entry on the seed axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedSpec {
    /// Zero-initialized registers and memories.
    Zero,
    /// `RegInit::Random` with this seed.
    Random(u64),
}

/// A parsed (but not yet compiled) campaign spec.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Report name.
    pub name: String,
    /// The design axis.
    pub designs: Vec<DesignRef>,
    /// Drive mode.
    pub mode: Mode,
    /// Free-run clock override.
    pub clock: Option<String>,
    /// Free-run cycle count.
    pub cycles: u64,
    /// The seed axis (defaults to `[Zero]`).
    pub seeds: Vec<SeedSpec>,
    /// The fault axis (defaults to `[None]`).
    pub faults: Vec<FaultRef>,
    /// Per-cycle stimulus (free-run only).
    pub stim: Vec<Stim>,
}

fn parse_u64(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

impl CampaignSpec {
    /// Parses the job-matrix grammar.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] naming the offending line.
    pub fn parse(text: &str) -> Result<CampaignSpec, CampaignError> {
        let mut spec = CampaignSpec {
            name: "campaign".into(),
            designs: Vec::new(),
            mode: Mode::Auto,
            clock: None,
            cycles: 100,
            seeds: Vec::new(),
            faults: Vec::new(),
            stim: Vec::new(),
        };
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| {
                CampaignError::Spec(format!("line {}: {what}: `{line}`", lineno + 1))
            };
            let (key, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
            let rest = rest.trim();
            match key {
                "name" => {
                    if rest.is_empty() {
                        return Err(bad("missing campaign name"));
                    }
                    spec.name = rest.to_owned();
                }
                "design" => {
                    let mut toks = rest.split_whitespace();
                    let Some(target) = toks.next() else {
                        return Err(bad("missing design (bug ID or .v path)"));
                    };
                    if let Ok(id) = target.parse::<BugId>() {
                        spec.designs.push(DesignRef::Bug(id));
                    } else {
                        let top = match (toks.next(), toks.next()) {
                            (None, _) => None,
                            (Some("top"), Some(t)) => Some(t.to_owned()),
                            _ => return Err(bad("expected `design <path> [top <module>]`")),
                        };
                        spec.designs.push(DesignRef::File {
                            path: target.to_owned(),
                            top,
                        });
                    }
                }
                "mode" => {
                    spec.mode = match rest {
                        "workload" => Mode::Workload,
                        "run" => Mode::Run,
                        _ => return Err(bad("mode must be `workload` or `run`")),
                    };
                }
                "clock" => {
                    if rest.is_empty() {
                        return Err(bad("missing clock name"));
                    }
                    spec.clock = Some(rest.to_owned());
                }
                "cycles" => {
                    spec.cycles = parse_u64(rest).ok_or_else(|| bad("bad cycle count"))?;
                }
                "seeds" => {
                    for tok in rest.split_whitespace() {
                        if tok == "zero" {
                            spec.seeds.push(SeedSpec::Zero);
                        } else if let Some((a, b)) = tok.split_once("..") {
                            let (a, b) = match (parse_u64(a), parse_u64(b)) {
                                (Some(a), Some(b)) if a <= b => (a, b),
                                _ => return Err(bad("bad seed range (want `lo..hi`, inclusive)")),
                            };
                            for s in a..=b {
                                spec.seeds.push(SeedSpec::Random(s));
                            }
                        } else {
                            let s = parse_u64(tok).ok_or_else(|| bad("bad seed"))?;
                            spec.seeds.push(SeedSpec::Random(s));
                        }
                    }
                }
                "fault" => match rest {
                    "" => return Err(bad("missing fault (none | auto | label: plan)")),
                    "none" => spec.faults.push(FaultRef::None),
                    "auto" => spec.faults.push(FaultRef::Auto),
                    _ => {
                        let (label, text) = rest
                            .split_once(':')
                            .ok_or_else(|| bad("expected `fault <label>: <plan>`"))?;
                        spec.faults.push(FaultRef::Plan {
                            label: label.trim().to_owned(),
                            text: text.trim().to_owned(),
                        });
                    }
                },
                "stim" => {
                    let mut toks = rest.split_whitespace();
                    let (Some(name), Some(val)) = (toks.next(), toks.next()) else {
                        return Err(bad("expected `stim <signal> <value|counter>`"));
                    };
                    let value = if val == "counter" {
                        StimValue::Counter
                    } else {
                        StimValue::Const(parse_u64(val).ok_or_else(|| bad("bad stim value"))?)
                    };
                    spec.stim.push(Stim {
                        name: name.to_owned(),
                        value,
                    });
                }
                _ => return Err(bad("unknown directive")),
            }
        }
        if spec.designs.is_empty() {
            return Err(CampaignError::Spec("spec names no designs".into()));
        }
        Ok(spec)
    }

    /// Loads and compiles every design once, expands the job matrix, and
    /// returns the runnable campaign.
    ///
    /// # Errors
    ///
    /// Design load/compile failures and invalid axis combinations (fault
    /// plans or stimulus on workload drives, a workload drive on a plain
    /// RTL file).
    pub fn build(&self) -> Result<Campaign, CampaignError> {
        let mut jobs = Vec::new();
        let seeds = if self.seeds.is_empty() {
            vec![SeedSpec::Zero]
        } else {
            self.seeds.clone()
        };
        let faults = if self.faults.is_empty() {
            vec![FaultRef::None]
        } else {
            self.faults.clone()
        };
        for dref in &self.designs {
            let (label, design, bug) = load_design(dref)?;
            let workload = match (self.mode, bug) {
                (Mode::Workload, Some(_)) | (Mode::Auto, Some(_)) => true,
                (Mode::Workload, None) => {
                    return Err(CampaignError::Spec(format!(
                        "design `{label}` is a plain RTL file; workload mode needs a bug ID"
                    )));
                }
                (Mode::Run, _) | (Mode::Auto, None) => false,
            };
            let clock = self
                .clock
                .clone()
                .or_else(|| design.clocks().into_iter().next())
                .unwrap_or_else(|| "clk".into());
            // Resolve the fault axis against this design.
            let mut plans: Vec<(String, Option<FaultPlan>)> = Vec::new();
            for fref in &faults {
                match fref {
                    FaultRef::None => plans.push(("none".into(), None)),
                    FaultRef::Auto => {
                        for (class, plan) in faults::all_plans(&design, MATRIX_SEED) {
                            plans.push((class.to_owned(), Some(plan)));
                        }
                    }
                    FaultRef::Plan { label: fl, text } => {
                        let plan = FaultPlan::parse(&text.replace(';', "\n"))?;
                        plan.validate(&design)?;
                        plans.push((fl.clone(), Some(plan)));
                    }
                }
            }
            if workload && plans.iter().any(|(_, p)| p.is_some()) {
                return Err(CampaignError::Spec(format!(
                    "design `{label}`: fault plans need `mode run` (workloads own the clocking)"
                )));
            }
            if workload && !self.stim.is_empty() {
                return Err(CampaignError::Spec(
                    "stimulus needs `mode run` (workloads drive their own inputs)".into(),
                ));
            }
            let shared = Arc::new(CompiledDesign::new(design)?);
            for (fault_label, plan) in &plans {
                for seed in &seeds {
                    let (seed_label, init) = match seed {
                        SeedSpec::Zero => ("zero".to_owned(), RegInit::Zero),
                        SeedSpec::Random(s) => (s.to_string(), RegInit::Random(*s)),
                    };
                    let drive = if workload {
                        // `workload` is only true when `bug` is `Some`.
                        match bug {
                            Some(id) => Drive::Workload(id),
                            None => unreachable!("workload mode without a bug id"),
                        }
                    } else {
                        Drive::FreeRun {
                            clock: clock.clone(),
                            cycles: self.cycles,
                            stim: self.stim.clone(),
                        }
                    };
                    jobs.push(Job {
                        design: label.clone(),
                        fault: fault_label.clone(),
                        seed: seed_label,
                        shared: Arc::clone(&shared),
                        init,
                        plan: plan.clone(),
                        drive,
                        models: ModelSet::std(),
                    });
                }
            }
        }
        Ok(Campaign {
            name: self.name.clone(),
            jobs,
        })
    }
}

/// Resolves a [`DesignRef`] to (report label, elaborated design, bug id).
fn load_design(dref: &DesignRef) -> Result<(String, Design, Option<BugId>), CampaignError> {
    match dref {
        DesignRef::Bug(id) => {
            let design = buggy_design(*id)
                .map_err(|e| CampaignError::Design(format!("{id}: {e}")))?;
            Ok((id.to_string(), design, Some(*id)))
        }
        DesignRef::File { path, top } => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| CampaignError::Design(format!("{path}: {e}")))?;
            let file = hwdbg_rtl::parse(&src)
                .map_err(|e| CampaignError::Design(format!("{path}: {e}")))?;
            let top = match top {
                Some(t) => t.clone(),
                None => file
                    .modules
                    .last()
                    .ok_or_else(|| {
                        CampaignError::Design(format!("{path}: file contains no modules"))
                    })?
                    .name
                    .clone(),
            };
            let design = elaborate(&file, &top, &StdIpLib::new())
                .map_err(|e| CampaignError::Design(format!("{path}: {e}")))?;
            let label = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(path.as_str())
                .to_owned();
            Ok((label, design, None))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let spec = CampaignSpec::parse(
            "# demo\n\
             name demo\n\
             design D2\n\
             seeds zero 1..3 0xA\n\
             fault none\n\
             fault auto\n",
        )
        .unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.designs, vec![DesignRef::Bug(BugId::D2)]);
        assert_eq!(
            spec.seeds,
            vec![
                SeedSpec::Zero,
                SeedSpec::Random(1),
                SeedSpec::Random(2),
                SeedSpec::Random(3),
                SeedSpec::Random(10)
            ]
        );
        assert_eq!(spec.faults.len(), 2);
    }

    #[test]
    fn rejects_unknown_directives_with_line_numbers() {
        let err = CampaignSpec::parse("design D1\nfrobnicate yes\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn workload_mode_rejects_fault_plans() {
        let spec = CampaignSpec::parse("design D1\nfault auto\n").unwrap();
        let err = spec.build().unwrap_err();
        assert!(err.to_string().contains("mode run"), "{err}");
    }

    #[test]
    fn bug_workload_matrix_expands_design_major() {
        let spec = CampaignSpec::parse("design D1\ndesign D2\nseeds zero 7\n").unwrap();
        let campaign = spec.build().unwrap();
        let labels: Vec<(String, String, String)> = campaign
            .jobs
            .iter()
            .map(|j| (j.design.clone(), j.fault.clone(), j.seed.clone()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("D1".into(), "none".into(), "zero".into()),
                ("D1".into(), "none".into(), "7".into()),
                ("D2".into(), "none".into(), "zero".into()),
                ("D2".into(), "none".into(), "7".into()),
            ]
        );
    }
}
