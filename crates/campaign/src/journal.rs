//! Crash-safe campaign journal and streaming report writer.
//!
//! The journal is an append-only JSONL file: one header line identifying
//! the campaign (name, job count, and an FNV-1a hash of the job matrix),
//! then one line per retired job. Records are appended as jobs complete
//! — in scheduling order, not input order — and fsync'd in batches, so a
//! killed campaign loses at most the last unsynced batch plus its
//! in-flight jobs. `hwdbg campaign --resume <journal>` replays the
//! completed records, revalidates the spec hash, and reruns only the
//! remainder; the final results section is byte-identical to an
//! uninterrupted run.
//!
//! Layout:
//!
//! ```text
//! {"journal": "hwdbg-campaign", "version": 1, "campaign": "fault-matrix", "jobs": 80, "spec_hash": "a1b2c3d4e5f60718"}
//! {"job": 3, "record": {"design": "d1", "fault": "stuck0", ... }}
//! {"job": 0, "record": { ... }}
//! ```
//!
//! A torn final line (the process died mid-write) is tolerated on load;
//! anything else malformed is a typed [`CampaignError::Journal`].
//!
//! [`StreamingReport`] reuses the same retire hook to stream the full
//! report to `--out` as jobs finish, reordering records through a small
//! buffer so the streamed file is byte-identical to
//! [`CampaignReport::to_json`](crate::CampaignReport::to_json).

use crate::job::{Campaign, Drive, Verdict};
use crate::report::{results_footer, results_header, timing_tail, CampaignReport, JobRecord};
use crate::CampaignError;
use hwdbg_obs::{json_escape, SimCounters};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Journal format version; bumped on any layout change.
pub const JOURNAL_VERSION: u64 = 1;

/// How many appended records share one fsync. A crash loses at most
/// this many synced-but-buffered records (they are rerun on resume).
const SYNC_BATCH: u32 = 16;

// ---------------------------------------------------------------------
// Spec hash
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64 over the campaign's job matrix: name, job count, and each
/// job's labels + drive shape. Resume refuses a journal whose hash does
/// not match the freshly built campaign — the spec changed underneath it
/// and the completed records describe different jobs.
pub fn spec_hash(campaign: &Campaign) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv(h, campaign.name.as_bytes());
    h = fnv(h, &[0]);
    h = fnv(h, campaign.jobs.len().to_string().as_bytes());
    for job in &campaign.jobs {
        h = fnv(h, &[0]);
        h = fnv(h, job.design.as_bytes());
        h = fnv(h, &[0]);
        h = fnv(h, job.fault.as_bytes());
        h = fnv(h, &[0]);
        h = fnv(h, job.seed.as_bytes());
        h = fnv(h, &[0]);
        match &job.drive {
            Drive::Workload(id) => h = fnv(h, format!("w:{id}").as_bytes()),
            Drive::FreeRun { clock, cycles, .. } => {
                h = fnv(h, format!("f:{clock}:{cycles}").as_bytes());
            }
        }
    }
    h
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only journal writer with batched fsync.
#[derive(Debug)]
pub struct JournalWriter {
    file: BufWriter<File>,
    dirty: u32,
    flushes: u64,
}

impl JournalWriter {
    /// Creates (truncates) a journal for `campaign` and writes + syncs
    /// the header line.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn create(path: &Path, campaign: &Campaign) -> std::io::Result<Self> {
        let mut w = JournalWriter {
            file: BufWriter::new(File::create(path)?),
            dirty: 0,
            flushes: 0,
        };
        writeln!(
            w.file,
            "{{\"journal\": \"hwdbg-campaign\", \"version\": {JOURNAL_VERSION}, \"campaign\": \"{}\", \"jobs\": {}, \"spec_hash\": \"{:016x}\"}}",
            json_escape(&campaign.name),
            campaign.jobs.len(),
            spec_hash(campaign),
        )?;
        w.sync()?;
        Ok(w)
    }

    /// Reopens an existing journal for appending (resume). The caller is
    /// expected to have validated it with [`load`] + [`validate`] first.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn resume(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            file: BufWriter::new(file),
            dirty: 0,
            flushes: 0,
        })
    }

    /// Appends one retired job record; syncs every [`SYNC_BATCH`]
    /// appends.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or syncing.
    pub fn append(&mut self, job: usize, record: &JobRecord) -> std::io::Result<()> {
        writeln!(self.file, "{{\"job\": {job}, \"record\": {}}}", record.json())?;
        self.dirty += 1;
        if self.dirty >= SYNC_BATCH {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes buffered lines and fsyncs the file.
    ///
    /// # Errors
    ///
    /// Any I/O error flushing or syncing.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.dirty = 0;
        self.flushes += 1;
        Ok(())
    }

    /// How many fsync batches this writer has issued (telemetry).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

// ---------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------

/// A journal replayed from disk.
#[derive(Debug)]
pub struct JournalState {
    /// Campaign name from the header.
    pub name: String,
    /// Total job count from the header.
    pub jobs: usize,
    /// Spec hash from the header.
    pub spec_hash: u64,
    /// Completed records by job index (duplicates: last write wins).
    pub completed: BTreeMap<usize, JobRecord>,
    /// True when the final line was torn (the writer died mid-append);
    /// the torn record is simply rerun.
    pub torn_tail: bool,
}

/// Loads and parses a journal file.
///
/// # Errors
///
/// [`CampaignError::Journal`] on I/O failure, a malformed header, or a
/// malformed record anywhere but the final line (a torn tail is
/// expected crash damage and tolerated).
pub fn load(path: &Path) -> Result<JournalState, CampaignError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CampaignError::Journal(format!("cannot read journal {path:?}: {e}")))?;
    let mut lines = text.lines().enumerate().peekable();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CampaignError::Journal("journal is empty".into()))?;
    let header = parse_json(header)
        .map_err(|e| CampaignError::Journal(format!("malformed journal header: {e}")))?;
    if header.get("journal").and_then(Json::as_str) != Some("hwdbg-campaign") {
        return Err(CampaignError::Journal(
            "not an hwdbg campaign journal (missing magic)".into(),
        ));
    }
    match header.get("version").and_then(Json::as_u64) {
        Some(JOURNAL_VERSION) => {}
        v => {
            return Err(CampaignError::Journal(format!(
                "unsupported journal version {v:?} (this build reads {JOURNAL_VERSION})"
            )))
        }
    }
    let name = header
        .get("campaign")
        .and_then(Json::as_str)
        .ok_or_else(|| CampaignError::Journal("journal header lacks campaign name".into()))?
        .to_string();
    let jobs = header
        .get("jobs")
        .and_then(Json::as_u64)
        .ok_or_else(|| CampaignError::Journal("journal header lacks job count".into()))?
        as usize;
    let hash_hex = header
        .get("spec_hash")
        .and_then(Json::as_str)
        .ok_or_else(|| CampaignError::Journal("journal header lacks spec hash".into()))?;
    let spec_hash = u64::from_str_radix(hash_hex, 16)
        .map_err(|_| CampaignError::Journal(format!("bad spec hash `{hash_hex}`")))?;

    let mut completed = BTreeMap::new();
    let mut torn_tail = false;
    while let Some((lineno, line)) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let last = lines.peek().is_none();
        match parse_record_line(line) {
            Ok((idx, record)) => {
                completed.insert(idx, record);
            }
            Err(_) if last => {
                // The writer died mid-append; the torn record reruns.
                torn_tail = true;
            }
            Err(e) => {
                return Err(CampaignError::Journal(format!(
                    "journal line {}: {e}",
                    lineno + 1
                )))
            }
        }
    }
    Ok(JournalState {
        name,
        jobs,
        spec_hash,
        completed,
        torn_tail,
    })
}

/// Checks a loaded journal against a freshly built campaign.
///
/// # Errors
///
/// [`CampaignError::Journal`] when the name, job count, or spec hash
/// disagree — resuming would splice records from a different job matrix.
pub fn validate(state: &JournalState, campaign: &Campaign) -> Result<(), CampaignError> {
    if state.name != campaign.name {
        return Err(CampaignError::Journal(format!(
            "journal is for campaign `{}`, not `{}`",
            state.name, campaign.name
        )));
    }
    if state.jobs != campaign.jobs.len() {
        return Err(CampaignError::Journal(format!(
            "journal expects {} jobs, campaign has {}",
            state.jobs,
            campaign.jobs.len()
        )));
    }
    let want = spec_hash(campaign);
    if state.spec_hash != want {
        return Err(CampaignError::Journal(format!(
            "journal spec hash {:016x} does not match campaign {want:016x} — the job matrix changed",
            state.spec_hash
        )));
    }
    Ok(())
}

fn parse_record_line(line: &str) -> Result<(usize, JobRecord), String> {
    let v = parse_json(line)?;
    let idx = v
        .get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| "record line lacks job index".to_string())? as usize;
    let rec = v
        .get("record")
        .ok_or_else(|| "record line lacks record object".to_string())?;
    Ok((idx, parse_job_record(rec)?))
}

fn parse_job_record(v: &Json) -> Result<JobRecord, String> {
    let field_str = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("record lacks string field `{name}`"))
    };
    let field_u64 = |name: &str| -> Result<u64, String> {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("record lacks numeric field `{name}`"))
    };
    let verdict_name = field_str("verdict")?;
    let verdict = Verdict::from_name(&verdict_name)
        .ok_or_else(|| format!("unknown verdict `{verdict_name}`"))?;
    let mut counters = SimCounters::default();
    let Some(Json::Obj(pairs)) = v.get("counters") else {
        return Err("record lacks counters object".to_string());
    };
    for (name, val) in pairs {
        let n = val
            .as_u64()
            .ok_or_else(|| format!("counter `{name}` is not a u64"))?;
        if !counters.set(name, n) {
            return Err(format!("unknown counter `{name}` (schema drift?)"));
        }
    }
    Ok(JobRecord {
        design: field_str("design")?,
        fault: field_str("fault")?,
        seed: field_str("seed")?,
        verdict,
        detail: field_str("detail")?,
        cycles: field_u64("cycles")?,
        counters,
        retries: field_u64("retries")? as u32,
    })
}

// ---------------------------------------------------------------------
// Streaming report writer
// ---------------------------------------------------------------------

/// Streams a full campaign report to a file as jobs retire, producing
/// bytes identical to [`CampaignReport::to_json`]. Records arrive in
/// scheduling order; a reorder buffer holds them until their input-order
/// slot comes up, so the deterministic layout is preserved while the
/// file fills during the run instead of materializing at the end.
#[derive(Debug)]
pub struct StreamingReport {
    file: BufWriter<File>,
    jobs: usize,
    emitted: usize,
    pending: BTreeMap<usize, String>,
}

impl StreamingReport {
    /// Creates the output file and writes the report prefix.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn create(path: &Path, name: &str, jobs: usize) -> std::io::Result<Self> {
        let mut file = BufWriter::new(File::create(path)?);
        write!(file, "{{\"results\": {}", results_header(name, jobs))?;
        file.flush()?;
        Ok(StreamingReport {
            file,
            jobs,
            emitted: 0,
            pending: BTreeMap::new(),
        })
    }

    /// Offers one retired record; contiguous records are written through
    /// immediately, out-of-order ones wait in the reorder buffer.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the file.
    pub fn push(&mut self, index: usize, record: &JobRecord) -> std::io::Result<()> {
        self.pending.insert(index, record.json());
        self.drain()
    }

    fn drain(&mut self) -> std::io::Result<()> {
        while let Some(line) = self.pending.remove(&self.emitted) {
            let sep = if self.emitted + 1 < self.jobs { ",\n" } else { "\n" };
            write!(self.file, "  {line}{sep}")?;
            self.emitted += 1;
        }
        self.file.flush()
    }

    /// Writes the merged-counter footer and the timing tail from the
    /// finished report, backfilling any records that were never pushed
    /// (defensive: the layout stays valid even if a retire hook was
    /// skipped).
    ///
    /// # Errors
    ///
    /// Any I/O error writing or flushing.
    pub fn finish(mut self, report: &CampaignReport) -> std::io::Result<()> {
        for (i, r) in report.records.iter().enumerate() {
            if i >= self.emitted && !self.pending.contains_key(&i) {
                self.pending.insert(i, r.json());
            }
        }
        self.drain()?;
        write!(self.file, "{}", results_footer(&report.merged))?;
        write!(
            self.file,
            "{}",
            timing_tail(
                report.workers,
                report.wall,
                report.jobs_per_sec(),
                report.steals,
                report.worker_deaths,
                report.journal_flushes,
                &report.job_wall,
            )
        )?;
        self.file.flush()
    }
}

// ---------------------------------------------------------------------
// Mini JSON parser (std-only; just enough for journals and baselines)
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw token so exact u64s
/// round-trip without a float detour.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// Object, insertion order preserved.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String (unescaped).
    Str(String),
    /// Number, raw token text.
    Num(String),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one complete JSON value from `text` (trailing garbage is an
/// error — journal lines are exactly one value each).
pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("empty number at offset {start}"));
    }
    let raw = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged; the input came from a &str).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "non-utf8 string content".to_string())?;
                let ch = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "empty tail".to_string())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // {
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}"));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        pairs.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_a_record_line() {
        let rec = JobRecord {
            design: "d1".into(),
            fault: "stuck\"quote".into(),
            seed: "7".into(),
            verdict: Verdict::TimedOut,
            detail: "line1\nline2\ttab".into(),
            cycles: u64::MAX,
            counters: {
                let mut c = SimCounters::default();
                assert!(c.set("steps", u64::MAX));
                assert!(c.set("jobs_timed_out", 1));
                c
            },
            retries: 3,
        };
        let line = format!("{{\"job\": 42, \"record\": {}}}", rec.json());
        let (idx, back) = parse_record_line(&line).unwrap();
        assert_eq!(idx, 42);
        assert_eq!(back.design, rec.design);
        assert_eq!(back.fault, rec.fault);
        assert_eq!(back.verdict, Verdict::TimedOut);
        assert_eq!(back.detail, rec.detail);
        assert_eq!(back.cycles, u64::MAX);
        assert_eq!(back.retries, 3);
        assert_eq!(back.counters, rec.counters);
        // Re-rendering the parsed record reproduces the original bytes —
        // the byte-identity contract resume depends on.
        assert_eq!(back.json(), rec.json());
    }

    #[test]
    fn parser_rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse_json("{\"a\": 1} extra").is_err());
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("tru").is_err());
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(
            parse_json("[1, \"x\", true]").unwrap(),
            Json::Arr(vec![
                Json::Num("1".into()),
                Json::Str("x".into()),
                Json::Bool(true)
            ])
        );
    }

    #[test]
    fn unicode_escapes_unescape() {
        let v = parse_json("\"caf\\u00e9 \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("café A"));
    }
}
