//! A std-only work-stealing job queue.
//!
//! Jobs are dealt to per-worker deques up front in contiguous chunks.
//! Each worker pops LIFO from the **back** of its own deque (freshest
//! first, cache-warm) and, when empty, steals the **front half** of the
//! first non-empty victim deque (the oldest jobs, which the owner would
//! reach last). This is the classic Chase–Lev shape implemented with
//! `Mutex<VecDeque>` instead of lock-free buffers: jobs here are whole
//! simulations (microseconds to seconds), so queue overhead is noise and
//! the std-only constraint wins.
//!
//! Determinism note: the queue hands out job *indices*; the runner slots
//! results back by index, so scheduling order never leaks into reports.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Recover the guard from a poisoned mutex: a panicked worker has already
/// failed the run (the runner surfaces it), so the queue state — plain
/// indices — is still safe to read.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub(crate) struct StealQueue {
    decks: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

impl StealQueue {
    /// Deals job indices `0..n_jobs` across `workers` deques in
    /// contiguous chunks (worker `w` starts with its own slice of the
    /// matrix, so neighboring jobs — usually the same design — stay on
    /// one core until stealing kicks in).
    pub fn new(n_jobs: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let mut decks: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for i in 0..n_jobs {
            decks[i * workers / n_jobs.max(1)].push_back(i);
        }
        StealQueue {
            decks: decks.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Next job for worker `me`: own deque first (LIFO), then steal-half
    /// from the first non-empty victim. `None` means every deque is empty
    /// — remaining jobs are already executing on other workers, so the
    /// caller can retire.
    pub fn next(&self, me: usize) -> Option<usize> {
        if let Some(i) = lock(&self.decks[me]).pop_back() {
            return Some(i);
        }
        let n = self.decks.len();
        for off in 1..n {
            let victim = (me + off) % n;
            // Take the front half as a batch under the victim's lock only,
            // then re-home it under our own lock. Never holding two deck
            // locks at once rules out lock-order deadlocks between
            // concurrent thieves.
            let batch = {
                let mut v = lock(&self.decks[victim]);
                let len = v.len();
                if len == 0 {
                    continue;
                }
                let take = len.div_ceil(2);
                let mut batch = Vec::with_capacity(take);
                for _ in 0..take {
                    match v.pop_front() {
                        Some(i) => batch.push(i),
                        None => break,
                    }
                }
                batch
            };
            let Some((&first, rest)) = batch.split_first() else {
                continue;
            };
            if !rest.is_empty() {
                let mut mine = lock(&self.decks[me]);
                // Push in reverse so our LIFO pop_back walks the stolen
                // jobs in their original (front-to-back) order.
                for &i in rest.iter().rev() {
                    mine.push_back(i);
                }
            }
            self.steals.fetch_add(1, Ordering::Relaxed);
            return Some(first);
        }
        None
    }

    /// How many steal operations happened (telemetry; nondeterministic).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn single_worker_drains_in_lifo_order() {
        let q = StealQueue::new(4, 1);
        let got: Vec<usize> = std::iter::from_fn(|| q.next(0)).collect();
        assert_eq!(got, vec![3, 2, 1, 0]);
        assert_eq!(q.steals(), 0);
    }

    #[test]
    fn every_job_is_handed_out_exactly_once() {
        for workers in [1, 2, 3, 8] {
            let q = StealQueue::new(23, workers);
            let mut seen = BTreeSet::new();
            // Drive all workers round-robin from one thread: interleaving
            // exercises stealing without scheduler nondeterminism.
            let mut live = true;
            while live {
                live = false;
                for w in 0..workers {
                    if let Some(i) = q.next(w) {
                        assert!(seen.insert(i), "job {i} handed out twice");
                        live = true;
                    }
                }
            }
            assert_eq!(seen.len(), 23, "workers={workers}");
        }
    }

    #[test]
    fn thieves_take_the_front_half() {
        // Two workers, all 8 jobs dealt to... both (chunked). Empty out
        // worker 1's own chunk, then force it to steal from worker 0.
        let q = StealQueue::new(8, 2);
        // Worker 1 owns 4..8; drain them.
        for _ in 0..4 {
            assert!(q.next(1).is_some());
        }
        // Next call must steal half of worker 0's remaining 4 jobs.
        let stolen = q.next(1);
        assert!(stolen.is_some());
        assert_eq!(q.steals(), 1);
    }
}
