//! Sharded execution: scoped worker threads draining the steal queue.
//!
//! Fault tolerance lives at two layers here:
//!
//! * **job panics** — each `run` call is wrapped in
//!   [`std::panic::catch_unwind`], so a crashing job is converted to a
//!   record by the caller's `on_panic` hook and the worker re-enters the
//!   steal loop. A buggy design (or buggy model) costs one record, not
//!   the whole report;
//! * **worker deaths** — results are pushed into a shared ledger as each
//!   job retires, so if a worker thread dies anyway (a panic in the
//!   retire hook, a stack overflow aborting unwind), only its in-flight
//!   job is lost. The coordinator recomputes the missing indices after
//!   the scope closes and reruns them inline, so the output is always
//!   complete.

use crate::queue::StealQueue;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Everything the pool measured about one run.
#[derive(Debug)]
pub(crate) struct RunOutput<R> {
    /// Per-job results, in input-job order regardless of scheduling.
    pub results: Vec<R>,
    /// Per-job wall time, same order (telemetry; nondeterministic).
    pub job_wall: Vec<Duration>,
    /// Total wall time of the pool.
    pub wall: Duration,
    /// Steal operations across all workers.
    pub steals: u64,
    /// Worker threads that died mid-run; their lost jobs were rerun
    /// inline by the coordinator, so `results` is complete regardless.
    pub worker_deaths: u64,
}

/// Renders a panic payload for a crash record: the `&str` / `String`
/// payloads `panic!` produces, or a placeholder for exotic ones.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Locks a mutex, riding through poisoning: a worker that panicked while
/// holding the ledger lock has already recorded its result or will be
/// recovered by the coordinator, so the data is still consistent.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `run` over every job on `workers` threads via work stealing.
/// `Simulator: Send` (static-asserted in `hwdbg-sim`) is what lets each
/// worker own full engines; the shared compiled designs inside the jobs
/// are `Sync` and cross thread boundaries by `Arc`.
///
/// Infallible: a `run` call that panics is mapped to a result by
/// `on_panic(index, job, message)`; `retire(index, &result)` fires once
/// per job as it completes (in scheduling order, not input order) for
/// streaming consumers like the journal; and jobs lost to a dying worker
/// are rerun inline by the coordinator. The returned `results` vector is
/// always exactly `jobs.len()` long, in input order.
pub(crate) fn run_sharded<J, R, F, P, T>(
    jobs: &[J],
    workers: usize,
    run: F,
    on_panic: P,
    retire: T,
) -> RunOutput<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
    P: Fn(usize, &J, String) -> R + Sync,
    T: Fn(usize, &R) + Sync,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    let queue = StealQueue::new(jobs.len(), workers);
    let t0 = Instant::now();
    // The shared ledger: workers push as each job retires, so a dying
    // worker loses only its in-flight job, never its finished ones.
    let ledger: Mutex<Vec<(usize, R, Duration)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let mut worker_deaths = 0u64;
    let execute = |i: usize| {
        let j0 = Instant::now();
        let r = match catch_unwind(AssertUnwindSafe(|| run(i, &jobs[i]))) {
            Ok(r) => r,
            Err(payload) => on_panic(i, &jobs[i], panic_message(payload.as_ref())),
        };
        retire(i, &r);
        (i, r, j0.elapsed())
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let ledger = &ledger;
                let execute = &execute;
                s.spawn(move || {
                    while let Some(i) = queue.next(w) {
                        let entry = execute(i);
                        lock(ledger).push(entry);
                    }
                })
            })
            .collect();
        for h in handles {
            if h.join().is_err() {
                worker_deaths += 1;
            }
        }
    });
    let mut collected = ledger.into_inner().unwrap_or_else(|p| p.into_inner());
    // Recovery: any index missing from the ledger was in flight on a
    // worker that died (or stranded in its deque). Rerun inline — the
    // jobs are pure functions of their inputs, so the record is the same
    // one the lost worker would have produced.
    if collected.len() != jobs.len() {
        let mut done = vec![false; jobs.len()];
        for (i, _, _) in &collected {
            done[*i] = true;
        }
        let missing: Vec<usize> = (0..jobs.len()).filter(|&i| !done[i]).collect();
        for i in missing {
            collected.push(execute(i));
        }
    }
    let wall = t0.elapsed();
    // Re-slot by input index: this is the determinism boundary. Whatever
    // interleaving the steals produced, the output order is the job order.
    collected.sort_by_key(|(i, _, _)| *i);
    let mut results = Vec::with_capacity(jobs.len());
    let mut job_wall = Vec::with_capacity(jobs.len());
    for (_, r, d) in collected {
        results.push(r);
        job_wall.push(d);
    }
    RunOutput {
        results,
        job_wall,
        wall,
        steals: queue.steals(),
        worker_deaths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn no_panic(_: usize, _: &usize, msg: String) -> usize {
        panic!("unexpected job panic: {msg}");
    }

    #[test]
    fn results_come_back_in_input_order() {
        let jobs: Vec<usize> = (0..97).collect();
        for workers in [1, 2, 8] {
            let out = run_sharded(
                &jobs,
                workers,
                |i, j| {
                    assert_eq!(i, *j);
                    j * 10
                },
                no_panic,
                |_, _| {},
            );
            let want: Vec<usize> = (0..97).map(|i| i * 10).collect();
            assert_eq!(out.results, want, "workers={workers}");
            assert_eq!(out.job_wall.len(), 97);
            assert_eq!(out.worker_deaths, 0);
        }
    }

    #[test]
    fn job_panic_is_isolated_and_mapped() {
        let jobs: Vec<usize> = (0..32).collect();
        let out = run_sharded(
            &jobs,
            4,
            |_, j| {
                assert!(*j != 5, "boom {j}");
                *j
            },
            |i, _, msg| {
                assert!(msg.contains("boom 5"), "payload lost: {msg}");
                i + 1000
            },
            |_, _| {},
        );
        // The pool survived: every other job ran, the panicking one got
        // the on_panic substitute, and no worker died.
        let want: Vec<usize> = (0..32).map(|i| if i == 5 { 1005 } else { i }).collect();
        assert_eq!(out.results, want);
        assert_eq!(out.worker_deaths, 0);
    }

    #[test]
    fn retire_fires_once_per_job() {
        let jobs: Vec<usize> = (0..40).collect();
        let fired = AtomicUsize::new(0);
        let out = run_sharded(
            &jobs,
            4,
            |_, j| *j,
            no_panic,
            |i, r| {
                assert_eq!(i, *r);
                fired.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 40);
        assert_eq!(out.results, jobs);
    }

    #[test]
    fn dying_worker_is_recovered_by_the_coordinator() {
        // A retire hook that panics once kills exactly one worker after
        // its job ran but before the result reached the ledger. The
        // coordinator must notice, rerun the lost job, and still return
        // the complete result set.
        let jobs: Vec<usize> = (0..24).collect();
        let killed = AtomicUsize::new(0);
        let out = run_sharded(
            &jobs,
            3,
            |_, j| *j * 2,
            no_panic,
            |i, _| {
                if i == 7 && killed.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("retire hook died");
                }
            },
        );
        let want: Vec<usize> = (0..24).map(|i| i * 2).collect();
        assert_eq!(out.results, want);
        assert_eq!(out.worker_deaths, 1);
        // Job 7 retired twice: once fatally on the worker, once on the
        // coordinator's recovery pass.
        assert_eq!(killed.load(Ordering::SeqCst), 2);
    }
}
