//! Sharded execution: scoped worker threads draining the steal queue.

use crate::queue::StealQueue;
use crate::CampaignError;
use std::time::{Duration, Instant};

/// Everything the pool measured about one run.
#[derive(Debug)]
pub(crate) struct RunOutput<R> {
    /// Per-job results, in input-job order regardless of scheduling.
    pub results: Vec<R>,
    /// Per-job wall time, same order (telemetry; nondeterministic).
    pub job_wall: Vec<Duration>,
    /// Total wall time of the pool.
    pub wall: Duration,
    /// Steal operations across all workers.
    pub steals: u64,
}

/// Runs `run` over every job on `workers` threads via work stealing.
/// `Simulator: Send` (static-asserted in `hwdbg-sim`) is what lets each
/// worker own full engines; the shared compiled designs inside the jobs
/// are `Sync` and cross thread boundaries by `Arc`.
pub(crate) fn run_sharded<J, R, F>(
    jobs: &[J],
    workers: usize,
    run: F,
) -> Result<RunOutput<R>, CampaignError>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let workers = workers.clamp(1, jobs.len().max(1));
    let queue = StealQueue::new(jobs.len(), workers);
    let t0 = Instant::now();
    let mut collected: Vec<(usize, R, Duration)> = Vec::with_capacity(jobs.len());
    let mut worker_panic = false;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let run = &run;
                s.spawn(move || {
                    let mut out = Vec::new();
                    while let Some(i) = queue.next(w) {
                        let j0 = Instant::now();
                        let r = run(i, &jobs[i]);
                        out.push((i, r, j0.elapsed()));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(mut v) => collected.append(&mut v),
                Err(_) => worker_panic = true,
            }
        }
    });
    let wall = t0.elapsed();
    if worker_panic {
        return Err(CampaignError::Worker(
            "a worker thread panicked; report would be incomplete".into(),
        ));
    }
    if collected.len() != jobs.len() {
        return Err(CampaignError::Worker(format!(
            "job accounting mismatch: ran {} of {} jobs",
            collected.len(),
            jobs.len()
        )));
    }
    // Re-slot by input index: this is the determinism boundary. Whatever
    // interleaving the steals produced, the output order is the job order.
    collected.sort_by_key(|(i, _, _)| *i);
    let mut results = Vec::with_capacity(jobs.len());
    let mut job_wall = Vec::with_capacity(jobs.len());
    for (_, r, d) in collected {
        results.push(r);
        job_wall.push(d);
    }
    Ok(RunOutput {
        results,
        job_wall,
        wall,
        steals: queue.steals(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let jobs: Vec<usize> = (0..97).collect();
        for workers in [1, 2, 8] {
            let out = run_sharded(&jobs, workers, |i, j| {
                assert_eq!(i, *j);
                j * 10
            })
            .unwrap();
            let want: Vec<usize> = (0..97).map(|i| i * 10).collect();
            assert_eq!(out.results, want, "workers={workers}");
            assert_eq!(out.job_wall.len(), 97);
        }
    }

    #[test]
    fn worker_panic_is_a_typed_error() {
        let jobs: Vec<usize> = (0..8).collect();
        let err = run_sharded(&jobs, 2, |_, j| {
            assert!(*j != 5, "boom");
            *j
        })
        .unwrap_err();
        assert!(matches!(err, CampaignError::Worker(_)));
    }
}
