//! Parallel simulation campaigns: many (design × fault plan × seed ×
//! stimulus) jobs sharded across OS threads over shared compiled designs.
//!
//! The paper's debugging workflows — fault-resilience matrices, seed
//! sweeps, differential tool comparisons — are embarrassingly parallel,
//! but every job used to pay the full `Simulator::new` compile. This
//! crate splits that cost: each distinct design is compiled **once** into
//! an immutable [`Arc<CompiledDesign>`](hwdbg_sim::CompiledDesign) shared
//! by every worker, and each job spins up only the cheap per-engine
//! mutable state via [`Simulator::from_compiled`](hwdbg_sim::Simulator).
//!
//! Scheduling is a std-only work-stealing pool (no external crates, per
//! the offline-build constraint): each worker owns a deque, pops LIFO
//! from its own back, and steals the front half of a victim's deque when
//! empty. Results are keyed by input job index, so the aggregated report
//! is **byte-identical** no matter how many workers ran or how the steal
//! race resolved — `tests/determinism.rs` pins that property across the
//! full 20-bug × 4-fault matrix.
//!
//! Entry points:
//! * [`CampaignSpec::parse`] — the job-matrix grammar (CLI spec files);
//! * [`clients::fault_matrix`] / [`clients::seed_sweep`] — the legacy
//!   serial suites rebuilt as campaigns;
//! * [`Campaign::run`] / [`Campaign::run_serial`] — execute and aggregate.

#![warn(missing_docs)]

mod job;
mod queue;
mod report;
mod runner;
mod spec;

pub mod baseline;
pub mod clients;
pub mod journal;

pub use job::{Campaign, Drive, Job, ModelSet, RunOptions, Stim, StimValue, Verdict};
pub use report::{CampaignReport, JobRecord};
pub use spec::{CampaignSpec, DesignRef, FaultRef, Mode, SeedSpec};

use hwdbg_sim::SimError;
use std::fmt;

/// Errors produced while building or running a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The job-matrix spec text is malformed.
    Spec(String),
    /// A design could not be loaded, elaborated, or compiled.
    Design(String),
    /// A simulator error outside any job (job-level errors become
    /// [`Verdict::Error`] records instead).
    Sim(SimError),
    /// A worker thread died; the report would be incomplete. Legacy
    /// variant: the pool now recovers dead workers, so this no longer
    /// arises from scheduling.
    Worker(String),
    /// The journal file is unreadable, corrupt beyond a torn tail, or
    /// does not match the campaign being resumed.
    Journal(String),
    /// The `--baseline` report is unreadable or not a campaign report.
    Baseline(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(m) => write!(f, "campaign spec error: {m}"),
            CampaignError::Design(m) => write!(f, "campaign design error: {m}"),
            CampaignError::Sim(e) => write!(f, "campaign simulator error: {e}"),
            CampaignError::Worker(m) => write!(f, "campaign worker error: {m}"),
            CampaignError::Journal(m) => write!(f, "campaign journal error: {m}"),
            CampaignError::Baseline(m) => write!(f, "campaign baseline error: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SimError> for CampaignError {
    fn from(e: SimError) -> Self {
        CampaignError::Sim(e)
    }
}

impl From<CampaignError> for hwdbg_diag::HwdbgError {
    fn from(e: CampaignError) -> Self {
        use hwdbg_diag::{ErrorCode, HwdbgError};
        match e {
            CampaignError::Sim(se) => se.into(),
            CampaignError::Spec(m) => HwdbgError::new(ErrorCode::CampaignSpec, m),
            CampaignError::Design(m) => HwdbgError::new(ErrorCode::CampaignDesign, m),
            CampaignError::Worker(m) => HwdbgError::new(ErrorCode::CampaignWorker, m),
            CampaignError::Journal(m) => {
                let code = if m.contains("corrupt") || m.contains("malformed") {
                    ErrorCode::JournalCorrupt
                } else {
                    ErrorCode::JournalMismatch
                };
                HwdbgError::new(code, m)
            }
            CampaignError::Baseline(m) => HwdbgError::new(ErrorCode::BaselineDrift, m),
        }
    }
}
