//! Aggregated campaign reports.
//!
//! A report has two sections with different determinism guarantees:
//!
//! * the **results** section ([`CampaignReport::results_json`]) — per-job
//!   verdicts and counters in input-job order plus the merged counter
//!   total. Byte-identical for any worker count, by construction;
//! * the **timing** section (the rest of [`CampaignReport::to_json`]) —
//!   wall clocks, throughput, steal counts. Honest measurements, and
//!   therefore different on every run.

use crate::job::Verdict;
use hwdbg_obs::{counters_json, json_escape, SimCounters};
use std::time::Duration;

/// One job's deterministic outcome.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Design label (bug ID or file stem).
    pub design: String,
    /// Fault label (`none`, a class name, or a spec label).
    pub fault: String,
    /// Seed label (`zero` or the numeric seed).
    pub seed: String,
    /// What happened.
    pub verdict: Verdict,
    /// Failure symptom / error message; empty on pass/completed.
    pub detail: String,
    /// Cycles actually simulated.
    pub cycles: u64,
    /// The job's own hot-path counters.
    pub counters: SimCounters,
}

impl JobRecord {
    fn json(&self) -> String {
        format!(
            "{{\"design\": \"{}\", \"fault\": \"{}\", \"seed\": \"{}\", \"verdict\": \"{}\", \"detail\": \"{}\", \"cycles\": {}, \"counters\": {}}}",
            json_escape(&self.design),
            json_escape(&self.fault),
            json_escape(&self.seed),
            self.verdict.name(),
            json_escape(&self.detail),
            self.cycles,
            counters_json(&self.counters),
        )
    }
}

/// The aggregated output of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Per-job records in input-job order.
    pub records: Vec<JobRecord>,
    /// Every job's counters merged.
    pub merged: SimCounters,
    /// Worker threads used.
    pub workers: usize,
    /// Total wall time of the run.
    pub wall: Duration,
    /// Steal operations observed (0 when serial).
    pub steals: u64,
    /// Per-job wall times, input-job order.
    pub job_wall: Vec<Duration>,
}

impl CampaignReport {
    pub(crate) fn new(
        name: String,
        records: Vec<JobRecord>,
        workers: usize,
        wall: Duration,
        steals: u64,
        job_wall: Vec<Duration>,
    ) -> Self {
        let merged = SimCounters::merge_all(records.iter().map(|r| &r.counters));
        CampaignReport {
            name,
            records,
            merged,
            workers,
            wall,
            steals,
            job_wall,
        }
    }

    /// Jobs per wall-clock second (throughput; nondeterministic).
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Count of records with a given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.records.iter().filter(|r| r.verdict == v).count()
    }

    /// The deterministic section only: per-job verdicts/counters plus the
    /// merged totals. Two runs of the same campaign produce the same
    /// bytes here regardless of worker count — the determinism suite and
    /// CI artifact diffing rely on that.
    pub fn results_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"campaign\": \"{}\", \"jobs\": {},\n \"records\": [\n",
            json_escape(&self.name),
            self.records.len()
        ));
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&r.json());
            out.push_str(if i + 1 < self.records.len() { ",\n" } else { "\n" });
        }
        out.push_str(&format!(" ],\n \"counters\": {}}}", counters_json(&self.merged)));
        out
    }

    /// The full report: the deterministic results section plus wall-clock
    /// timings and scheduler telemetry.
    pub fn to_json(&self) -> String {
        let job_ms: Vec<String> = self
            .job_wall
            .iter()
            .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
            .collect();
        format!(
            "{{\"results\": {},\n \"workers\": {}, \"wall_ms\": {:.3}, \"jobs_per_sec\": {:.1}, \"steals\": {}, \"job_wall_ms\": [{}]}}",
            self.results_json(),
            self.workers,
            self.wall.as_secs_f64() * 1e3,
            self.jobs_per_sec(),
            self.steals,
            job_ms.join(", "),
        )
    }

    /// Human-readable one-screen summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign {}: {} jobs on {} worker{} in {:.1} ms ({:.1} jobs/s, {} steals)\n",
            self.name,
            self.records.len(),
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall.as_secs_f64() * 1e3,
            self.jobs_per_sec(),
            self.steals,
        ));
        out.push_str(&format!(
            "  verdicts: {} pass, {} fail, {} completed, {} error\n",
            self.count(Verdict::Pass),
            self.count(Verdict::Fail),
            self.count(Verdict::Completed),
            self.count(Verdict::Error),
        ));
        for r in &self.records {
            let detail = if r.detail.is_empty() {
                String::new()
            } else {
                format!("  ({})", r.detail)
            };
            out.push_str(&format!(
                "  {:<6} {:<16} {:<10} {:>9}  {:>5} cycles{}\n",
                r.design,
                r.fault,
                r.seed,
                r.verdict.name(),
                r.cycles,
                detail
            ));
        }
        out
    }
}
