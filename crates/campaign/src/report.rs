//! Aggregated campaign reports.
//!
//! A report has two sections with different determinism guarantees:
//!
//! * the **results** section ([`CampaignReport::results_json`]) — per-job
//!   verdicts and counters in input-job order plus the merged counter
//!   total. Byte-identical for any worker count, by construction;
//! * the **timing** section (the rest of [`CampaignReport::to_json`]) —
//!   wall clocks, throughput, steal counts, worker deaths, journal
//!   flushes. Honest measurements, and therefore different on every run.
//!
//! The layout helpers ([`results_header`], [`JobRecord::json`],
//! [`results_footer`], [`timing_tail`]) are shared with the streaming
//! writer in `journal.rs`, so a report streamed record-by-record to
//! `--out` is byte-identical to one rendered at the end by
//! [`CampaignReport::to_json`].

use crate::job::Verdict;
use hwdbg_obs::{counters_json, json_escape, SimCounters};
use std::time::Duration;

/// One job's deterministic outcome.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Design label (bug ID or file stem).
    pub design: String,
    /// Fault label (`none`, a class name, or a spec label).
    pub fault: String,
    /// Seed label (`zero` or the numeric seed).
    pub seed: String,
    /// What happened.
    pub verdict: Verdict,
    /// Failure symptom / error message / panic payload; empty on
    /// pass/completed.
    pub detail: String,
    /// Cycles actually simulated.
    pub cycles: u64,
    /// The job's own hot-path counters.
    pub counters: SimCounters,
    /// How many times the job was rerun before this record was accepted
    /// (crashed/timed-out outcomes only; see `RunOptions::retries`).
    pub retries: u32,
}

impl JobRecord {
    /// One record as a single JSON line (shared between the aggregated
    /// report, the streaming `--out` writer, and the journal).
    pub(crate) fn json(&self) -> String {
        format!(
            "{{\"design\": \"{}\", \"fault\": \"{}\", \"seed\": \"{}\", \"verdict\": \"{}\", \"detail\": \"{}\", \"cycles\": {}, \"retries\": {}, \"counters\": {}}}",
            json_escape(&self.design),
            json_escape(&self.fault),
            json_escape(&self.seed),
            self.verdict.name(),
            json_escape(&self.detail),
            self.cycles,
            self.retries,
            counters_json(&self.counters),
        )
    }
}

/// Opening of the results section, through the start of the record list.
pub(crate) fn results_header(name: &str, jobs: usize) -> String {
    format!(
        "{{\"campaign\": \"{}\", \"jobs\": {},\n \"records\": [\n",
        json_escape(name),
        jobs
    )
}

/// Closing of the results section: the merged counter totals.
pub(crate) fn results_footer(merged: &SimCounters) -> String {
    format!(" ],\n \"counters\": {}}}", counters_json(merged))
}

/// The nondeterministic timing/telemetry tail of the full report,
/// starting right after the results section's closing brace.
pub(crate) fn timing_tail(
    workers: usize,
    wall: Duration,
    jobs_per_sec: f64,
    steals: u64,
    worker_deaths: u64,
    journal_flushes: u64,
    job_wall: &[Duration],
) -> String {
    let job_ms: Vec<String> = job_wall
        .iter()
        .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
        .collect();
    format!(
        ",\n \"workers\": {}, \"wall_ms\": {:.3}, \"jobs_per_sec\": {:.1}, \"steals\": {}, \"worker_deaths\": {}, \"journal_flushes\": {}, \"job_wall_ms\": [{}]}}",
        workers,
        wall.as_secs_f64() * 1e3,
        jobs_per_sec,
        steals,
        worker_deaths,
        journal_flushes,
        job_ms.join(", "),
    )
}

/// The aggregated output of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Per-job records in input-job order.
    pub records: Vec<JobRecord>,
    /// Every job's counters merged.
    pub merged: SimCounters,
    /// Worker threads used.
    pub workers: usize,
    /// Total wall time of the run.
    pub wall: Duration,
    /// Steal operations observed (0 when serial).
    pub steals: u64,
    /// Per-job wall times, input-job order (`Duration::ZERO` for records
    /// replayed from a journal on resume).
    pub job_wall: Vec<Duration>,
    /// Worker threads that died mid-run and were recovered by the
    /// coordinator (telemetry; 0 in healthy runs).
    pub worker_deaths: u64,
    /// fsync batches the journal writer issued, when one was attached
    /// (telemetry; set by the CLI, 0 otherwise).
    pub journal_flushes: u64,
}

impl CampaignReport {
    pub(crate) fn new(
        name: String,
        records: Vec<JobRecord>,
        workers: usize,
        wall: Duration,
        steals: u64,
        job_wall: Vec<Duration>,
        worker_deaths: u64,
    ) -> Self {
        let merged = SimCounters::merge_all(records.iter().map(|r| &r.counters));
        CampaignReport {
            name,
            records,
            merged,
            workers,
            wall,
            steals,
            job_wall,
            worker_deaths,
            journal_flushes: 0,
        }
    }

    /// Jobs per wall-clock second (throughput; nondeterministic).
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.records.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Count of records with a given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.records.iter().filter(|r| r.verdict == v).count()
    }

    /// The deterministic section only: per-job verdicts/counters plus the
    /// merged totals. Two runs of the same campaign produce the same
    /// bytes here regardless of worker count — and a resumed run produces
    /// the same bytes as an uninterrupted one — the determinism suite and
    /// CI artifact diffing rely on that. (Exception: `timed-out` records
    /// embed how far the job got before its wall-clock deadline.)
    pub fn results_json(&self) -> String {
        let mut out = results_header(&self.name, self.records.len());
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&r.json());
            out.push_str(if i + 1 < self.records.len() { ",\n" } else { "\n" });
        }
        out.push_str(&results_footer(&self.merged));
        out
    }

    /// The full report: the deterministic results section plus wall-clock
    /// timings and scheduler telemetry.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"results\": {}{}",
            self.results_json(),
            timing_tail(
                self.workers,
                self.wall,
                self.jobs_per_sec(),
                self.steals,
                self.worker_deaths,
                self.journal_flushes,
                &self.job_wall,
            ),
        )
    }

    /// Human-readable one-screen summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign {}: {} jobs on {} worker{} in {:.1} ms ({:.1} jobs/s, {} steals)\n",
            self.name,
            self.records.len(),
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall.as_secs_f64() * 1e3,
            self.jobs_per_sec(),
            self.steals,
        ));
        out.push_str(&format!(
            "  verdicts: {} pass, {} fail, {} completed, {} error, {} crashed, {} timed-out\n",
            self.count(Verdict::Pass),
            self.count(Verdict::Fail),
            self.count(Verdict::Completed),
            self.count(Verdict::Error),
            self.count(Verdict::Crashed),
            self.count(Verdict::TimedOut),
        ));
        if self.worker_deaths > 0 {
            out.push_str(&format!(
                "  recovered {} dead worker{}\n",
                self.worker_deaths,
                if self.worker_deaths == 1 { "" } else { "s" },
            ));
        }
        for r in &self.records {
            let detail = if r.detail.is_empty() {
                String::new()
            } else {
                format!("  ({})", r.detail)
            };
            let retried = if r.retries > 0 {
                format!("  [{} retries]", r.retries)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {:<6} {:<16} {:<10} {:>9}  {:>5} cycles{}{}\n",
                r.design,
                r.fault,
                r.seed,
                r.verdict.name(),
                r.cycles,
                retried,
                detail
            ));
        }
        out
    }
}
