//! Prebuilt campaigns mirroring the legacy serial suites.
//!
//! * [`fault_matrix`] — the fault-injection robustness matrix (every
//!   testbed bug × every fault class), previously a serial double loop in
//!   `tests/fault_injection.rs`. Same seed, same cycle count, same
//!   "completes or typed error, never a panic" contract — but each
//!   design is compiled once and shared across its four class jobs, and
//!   the jobs shard across workers.
//! * [`seed_sweep`] — `RegInit::Random` workload sweeps: every testbed
//!   bug run under N random register/memory initializations, checking
//!   the verdict is seed-stable.

use crate::job::{Campaign, Drive, Job, ModelSet};
use crate::CampaignError;
use hwdbg_sim::{CompiledDesign, RegInit};
use hwdbg_testbed::{buggy_design, faults, BugId};
use std::sync::Arc;

/// The legacy fault-matrix seed (`tests/fault_injection.rs` uses the
/// same constant, so campaign plans match the serial suite's exactly).
pub const MATRIX_SEED: u64 = 0xC0FFEE;

/// The legacy fault-matrix run length, in cycles.
pub const MATRIX_CYCLES: u64 = 40;

fn clock_of(design: &hwdbg_dataflow::Design) -> String {
    design
        .clocks()
        .into_iter()
        .next()
        .unwrap_or_else(|| "clk".into())
}

/// Builds the full fault-injection matrix: every testbed bug × every
/// fault class, 40 faulted cycles each, zero-init. One compiled design
/// per bug shared across its four class jobs.
///
/// # Errors
///
/// Design build/compile failures ([`CampaignError::Design`]).
pub fn fault_matrix() -> Result<Campaign, CampaignError> {
    let mut jobs = Vec::with_capacity(BugId::ALL.len() * faults::FAULT_CLASSES.len());
    for id in BugId::ALL {
        let design = buggy_design(id).map_err(|e| CampaignError::Design(format!("{id}: {e}")))?;
        let clock = clock_of(&design);
        let plans = faults::all_plans(&design, MATRIX_SEED);
        let shared = Arc::new(CompiledDesign::new(design)?);
        for (class, plan) in plans {
            jobs.push(Job {
                design: id.to_string(),
                fault: class.to_owned(),
                seed: "zero".into(),
                shared: Arc::clone(&shared),
                init: RegInit::Zero,
                plan: Some(plan),
                drive: Drive::FreeRun {
                    clock: clock.clone(),
                    cycles: MATRIX_CYCLES,
                    stim: Vec::new(),
                },
                models: ModelSet::std(),
            });
        }
    }
    Ok(Campaign {
        name: "fault-matrix".into(),
        jobs,
    })
}

/// Builds a `RegInit::Random` seed sweep: every testbed bug's workload
/// under seeds `1..=n_seeds`, one compiled design per bug shared across
/// its seed jobs. Useful for shaking out init-sensitive verdicts.
///
/// # Errors
///
/// Design build/compile failures ([`CampaignError::Design`]).
pub fn seed_sweep(n_seeds: u64) -> Result<Campaign, CampaignError> {
    let mut jobs = Vec::new();
    for id in BugId::ALL {
        let design = buggy_design(id).map_err(|e| CampaignError::Design(format!("{id}: {e}")))?;
        let shared = Arc::new(CompiledDesign::new(design)?);
        for seed in 1..=n_seeds.max(1) {
            jobs.push(Job {
                design: id.to_string(),
                fault: "none".into(),
                seed: seed.to_string(),
                shared: Arc::clone(&shared),
                init: RegInit::Random(seed),
                plan: None,
                drive: Drive::Workload(id),
                models: ModelSet::std(),
            });
        }
    }
    Ok(Campaign {
        name: "seed-sweep".into(),
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_matrix_covers_every_pair_once() {
        let campaign = fault_matrix().unwrap();
        assert_eq!(
            campaign.jobs.len(),
            BugId::ALL.len() * faults::FAULT_CLASSES.len()
        );
        // Each bug's four jobs share one compiled design.
        for chunk in campaign.jobs.chunks(faults::FAULT_CLASSES.len()) {
            for j in &chunk[1..] {
                assert!(Arc::ptr_eq(&chunk[0].shared, &j.shared));
            }
        }
    }

    #[test]
    fn seed_sweep_uses_random_init() {
        let campaign = seed_sweep(3).unwrap();
        assert_eq!(campaign.jobs.len(), BugId::ALL.len() * 3);
        assert!(campaign
            .jobs
            .iter()
            .all(|j| matches!(j.init, RegInit::Random(_))));
    }
}
