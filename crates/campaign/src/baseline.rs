//! Baseline diffing: compare a fresh campaign's deterministic verdicts
//! against a previously saved report and surface any drift.
//!
//! `hwdbg campaign ... --baseline old.json` parses the prior report
//! (either the full [`CampaignReport::to_json`] layout or the bare
//! results section), keys each record by its `(design, fault, seed)`
//! labels, and compares verdicts. Any change — a pass that now fails, a
//! completed job that now crashes — is **drift**, rendered as a per-job
//! table and reported through a nonzero exit code so CI can gate on it.
//! Jobs present on only one side are listed separately (the matrix
//! itself changed; that is reshaping, not drift).
//!
//! [`CampaignReport::to_json`]: crate::CampaignReport::to_json

use crate::journal::{parse_json, Json};
use crate::report::JobRecord;
use crate::CampaignError;
use std::collections::BTreeMap;

/// Baseline verdicts keyed by `(design, fault, seed)` labels; a `Vec`
/// per key so duplicate labels compare positionally.
pub type BaselineMap = BTreeMap<(String, String, String), Vec<String>>;

/// One job whose verdict changed between the baseline and this run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Design label.
    pub design: String,
    /// Fault label.
    pub fault: String,
    /// Seed label.
    pub seed: String,
    /// Verdict recorded in the baseline.
    pub was: String,
    /// Verdict observed now.
    pub now: String,
}

/// The outcome of diffing a run against a baseline report.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// Jobs present in both whose verdicts differ.
    pub drifted: Vec<Drift>,
    /// Baseline jobs absent from this run (`design/fault/seed` labels).
    pub missing: Vec<String>,
    /// Jobs in this run absent from the baseline.
    pub added: Vec<String>,
}

impl BaselineDiff {
    /// True when no verdict drifted (matrix reshaping alone is clean).
    pub fn is_clean(&self) -> bool {
        self.drifted.is_empty()
    }

    /// The per-job drift table (empty string when clean).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.drifted.is_empty() {
            out.push_str(&format!("verdict drift in {} job(s):\n", self.drifted.len()));
            out.push_str(&format!(
                "  {:<8} {:<18} {:<10} {:>10} -> {:<10}\n",
                "design", "fault", "seed", "baseline", "now"
            ));
            for d in &self.drifted {
                out.push_str(&format!(
                    "  {:<8} {:<18} {:<10} {:>10} -> {:<10}\n",
                    d.design, d.fault, d.seed, d.was, d.now
                ));
            }
        }
        if !self.missing.is_empty() {
            out.push_str(&format!(
                "baseline-only jobs (not drift): {}\n",
                self.missing.join(", ")
            ));
        }
        if !self.added.is_empty() {
            out.push_str(&format!(
                "new jobs (not in baseline): {}\n",
                self.added.join(", ")
            ));
        }
        out
    }
}

/// Parses a saved report's JSON text into a [`BaselineMap`].
///
/// # Errors
///
/// [`CampaignError::Baseline`] when the text is not a campaign report.
pub fn parse_baseline(text: &str) -> Result<BaselineMap, CampaignError> {
    let root = parse_json(text)
        .map_err(|e| CampaignError::Baseline(format!("baseline is not valid JSON: {e}")))?;
    // Accept the full report ({"results": {...}, "workers": ...}) or the
    // bare results section ({"campaign": ..., "records": [...]}).
    let results = root.get("results").unwrap_or(&root);
    let Some(Json::Arr(records)) = results.get("records") else {
        return Err(CampaignError::Baseline(
            "baseline has no records array — not a campaign report".into(),
        ));
    };
    let mut map = BaselineMap::new();
    for (i, r) in records.iter().enumerate() {
        let get = |k: &str| -> Result<String, CampaignError> {
            r.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    CampaignError::Baseline(format!("baseline record {i} lacks `{k}`"))
                })
        };
        let key = (get("design")?, get("fault")?, get("seed")?);
        map.entry(key).or_default().push(get("verdict")?);
    }
    Ok(map)
}

/// Diffs this run's records against a parsed baseline.
pub fn diff(records: &[JobRecord], baseline: &BaselineMap) -> BaselineDiff {
    let mut now = BaselineMap::new();
    for r in records {
        now.entry((r.design.clone(), r.fault.clone(), r.seed.clone()))
            .or_default()
            .push(r.verdict.name().to_string());
    }
    let mut out = BaselineDiff::default();
    for (key, was_list) in baseline {
        match now.get(key) {
            None => out.missing.push(format!("{}/{}/{}", key.0, key.1, key.2)),
            Some(now_list) => {
                for (pos, was) in was_list.iter().enumerate() {
                    match now_list.get(pos) {
                        None => out.missing.push(format!("{}/{}/{}", key.0, key.1, key.2)),
                        Some(v) if v != was => out.drifted.push(Drift {
                            design: key.0.clone(),
                            fault: key.1.clone(),
                            seed: key.2.clone(),
                            was: was.clone(),
                            now: v.clone(),
                        }),
                        Some(_) => {}
                    }
                }
                if now_list.len() > was_list.len() {
                    out.added.push(format!("{}/{}/{}", key.0, key.1, key.2));
                }
            }
        }
    }
    for key in now.keys() {
        if !baseline.contains_key(key) {
            out.added.push(format!("{}/{}/{}", key.0, key.1, key.2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Verdict;
    use hwdbg_obs::SimCounters;

    fn rec(design: &str, fault: &str, seed: &str, verdict: Verdict) -> JobRecord {
        JobRecord {
            design: design.into(),
            fault: fault.into(),
            seed: seed.into(),
            verdict,
            detail: String::new(),
            cycles: 1,
            counters: SimCounters::default(),
            retries: 0,
        }
    }

    #[test]
    fn clean_when_verdicts_match() {
        let baseline = parse_baseline(
            "{\"campaign\": \"x\", \"jobs\": 2,\n \"records\": [\n  {\"design\": \"d1\", \"fault\": \"none\", \"seed\": \"0\", \"verdict\": \"pass\"},\n  {\"design\": \"d2\", \"fault\": \"none\", \"seed\": \"0\", \"verdict\": \"fail\"}\n ]}",
        )
        .unwrap();
        let records = vec![
            rec("d1", "none", "0", Verdict::Pass),
            rec("d2", "none", "0", Verdict::Fail),
        ];
        let d = diff(&records, &baseline);
        assert!(d.is_clean());
        assert!(d.missing.is_empty() && d.added.is_empty());
    }

    #[test]
    fn drift_and_reshaping_are_reported_separately() {
        let baseline = parse_baseline(
            "{\"results\": {\"campaign\": \"x\", \"jobs\": 2,\n \"records\": [\n  {\"design\": \"d1\", \"fault\": \"none\", \"seed\": \"0\", \"verdict\": \"pass\"},\n  {\"design\": \"gone\", \"fault\": \"none\", \"seed\": \"0\", \"verdict\": \"pass\"}\n ]}, \"workers\": 2}",
        )
        .unwrap();
        let records = vec![
            rec("d1", "none", "0", Verdict::Crashed),
            rec("new", "none", "0", Verdict::Pass),
        ];
        let d = diff(&records, &baseline);
        assert_eq!(d.drifted.len(), 1);
        assert_eq!(d.drifted[0].was, "pass");
        assert_eq!(d.drifted[0].now, "crashed");
        assert_eq!(d.missing, vec!["gone/none/0"]);
        assert_eq!(d.added, vec!["new/none/0"]);
        assert!(!d.is_clean());
        let table = d.render_table();
        assert!(table.contains("pass"), "{table}");
        assert!(table.contains("crashed"), "{table}");
    }

    #[test]
    fn rejects_non_report_json() {
        assert!(parse_baseline("{\"hello\": 1}").is_err());
        assert!(parse_baseline("not json").is_err());
    }
}
