//! Fault-tolerance acceptance suite: panic isolation, watchdog
//! deadlines, bounded retry, and crash-safe journal resume.
//!
//! The scenarios mirror real fleet failures: a buggy behavioral model
//! that panics mid-job, a livelocked design that never finishes, and a
//! campaign process killed mid-run whose journal is resumed. In every
//! case the report must complete — the full fault matrix plus the
//! injected disasters — and a resumed run must reproduce the
//! uninterrupted run's results section byte for byte.

use hwdbg_bits::Bits;
use hwdbg_campaign::journal::{self, JournalWriter, StreamingReport};
use hwdbg_campaign::{
    clients, Campaign, CampaignError, Drive, Job, JobRecord, ModelSet, RunOptions, Verdict,
};
use hwdbg_dataflow::{elaborate, BbInst, NoBlackboxes};
use hwdbg_ip::{StdIpLib, StdModels};
use hwdbg_sim::{Blackbox, BlackboxFactory, CompiledDesign, RegInit};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

// -------------------------------------------------------------------
// Injected disasters
// -------------------------------------------------------------------

/// A behavioral model that panics on its `fuse`-th clock tick —
/// simulating a buggy third-party IP model crashing mid-campaign.
struct PanicBomb {
    ticks: u64,
    fuse: u64,
}

impl Blackbox for PanicBomb {
    fn eval(&mut self, _inputs: &BTreeMap<String, Bits>) -> BTreeMap<String, Bits> {
        BTreeMap::new()
    }

    fn tick(&mut self, _clock_port: &str, _inputs: &BTreeMap<String, Bits>) {
        self.ticks += 1;
        assert!(self.ticks < self.fuse, "injected model crash at tick {}", self.ticks);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Standard models everywhere except `scfifo`, which gets the bomb.
struct BombModels {
    fuse: u64,
}

impl BlackboxFactory for BombModels {
    fn create(&self, inst: &BbInst) -> Option<Box<dyn Blackbox + Send>> {
        if inst.module == "scfifo" {
            Some(Box::new(PanicBomb {
                ticks: 0,
                fuse: self.fuse,
            }))
        } else {
            StdModels.create(inst)
        }
    }
}

/// A job whose scfifo model detonates after `fuse` ticks.
fn bomb_job(fuse: u64) -> Job {
    let src = "module bombtop(input clk, input [7:0] d, input push, input pop,
                 output [7:0] head, output empty, output full);
                 scfifo #(.WIDTH(8), .DEPTH(4)) f0 (.clock(clk), .data(d), .wrreq(push),
                   .rdreq(pop), .q(head), .empty(empty), .full(full));
               endmodule";
    let file = hwdbg_rtl::parse(src).expect("bomb design parses");
    let design = elaborate(&file, "bombtop", &StdIpLib::new()).expect("bomb design elaborates");
    Job {
        design: "bomb".into(),
        fault: "model-panic".into(),
        seed: "zero".into(),
        shared: Arc::new(CompiledDesign::new(design).expect("bomb design compiles")),
        init: RegInit::Zero,
        plan: None,
        drive: Drive::FreeRun {
            clock: "clk".into(),
            cycles: 50,
            stim: Vec::new(),
        },
        models: ModelSet::custom(Arc::new(BombModels { fuse })),
    }
}

/// A job that free-runs effectively forever: only the wall-clock
/// watchdog can end it.
fn hung_job() -> Job {
    let src = "module spin(input clk, output reg [15:0] q);
                 always @(posedge clk) q <= q + 16'd1;
               endmodule";
    let file = hwdbg_rtl::parse(src).expect("spin design parses");
    let design = elaborate(&file, "spin", &NoBlackboxes).expect("spin design elaborates");
    Job {
        design: "spin".into(),
        fault: "livelock".into(),
        seed: "zero".into(),
        shared: Arc::new(CompiledDesign::new(design).expect("spin design compiles")),
        init: RegInit::Zero,
        plan: None,
        drive: Drive::FreeRun {
            clock: "clk".into(),
            cycles: u64::MAX,
            stim: Vec::new(),
        },
        models: ModelSet::std(),
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hwdbg_ft_{}_{tag}", std::process::id()))
}

// -------------------------------------------------------------------
// Acceptance: the full matrix plus injected disasters completes
// -------------------------------------------------------------------

#[test]
fn matrix_with_injected_panic_and_hang_completes() {
    let mut campaign = clients::fault_matrix().expect("matrix builds");
    let matrix_jobs = campaign.jobs.len();
    campaign.jobs.push(bomb_job(5));
    campaign.jobs.push(hung_job());
    let opts = RunOptions {
        job_timeout: Some(Duration::from_secs(2)),
        retries: 0,
    };
    let report = campaign
        .run_with(4, opts, &BTreeMap::new(), |_, _| {})
        .expect("campaign completes despite disasters");
    assert_eq!(report.records.len(), matrix_jobs + 2);

    // Exactly one crash: the bomb. The pool survived it.
    assert_eq!(report.count(Verdict::Crashed), 1);
    let crashed = &report.records[matrix_jobs];
    assert_eq!(crashed.design, "bomb");
    assert_eq!(crashed.verdict, Verdict::Crashed);
    assert!(
        crashed.detail.contains("injected model crash"),
        "panic payload lost: {:?}",
        crashed.detail
    );
    assert_eq!(crashed.counters.jobs_crashed, 1);

    // Exactly one timeout: the spinner.
    assert_eq!(report.count(Verdict::TimedOut), 1);
    let hung = &report.records[matrix_jobs + 1];
    assert_eq!(hung.design, "spin");
    assert_eq!(hung.verdict, Verdict::TimedOut);
    assert!(
        hung.detail.contains("deadline exceeded"),
        "unexpected detail: {:?}",
        hung.detail
    );
    assert_eq!(hung.counters.jobs_timed_out, 1);
    // It made real progress before the watchdog fired.
    assert!(hung.cycles > 0);

    // Every matrix job still produced its normal record.
    let normal = report.count(Verdict::Pass)
        + report.count(Verdict::Fail)
        + report.count(Verdict::Completed)
        + report.count(Verdict::Error);
    assert_eq!(normal, matrix_jobs);
    assert_eq!(report.worker_deaths, 0);

    // The human rendering surfaces the new verdict classes.
    let human = report.render_human();
    assert!(human.contains("1 crashed"), "{human}");
    assert!(human.contains("1 timed-out"), "{human}");
}

#[test]
fn deterministic_crash_burns_all_retries() {
    let campaign = Campaign {
        name: "bomb-only".into(),
        jobs: vec![bomb_job(3)],
    };
    let opts = RunOptions {
        job_timeout: None,
        retries: 2,
    };
    let report = campaign
        .run_with(1, opts, &BTreeMap::new(), |_, _| {})
        .expect("runs");
    let rec = &report.records[0];
    assert_eq!(rec.verdict, Verdict::Crashed);
    assert_eq!(rec.retries, 2, "both retries burned on a deterministic panic");
    assert_eq!(rec.counters.jobs_retried, 2);
    assert_eq!(rec.counters.jobs_crashed, 1);
    assert_eq!(report.merged.jobs_retried, 2);
}

// -------------------------------------------------------------------
// Journal: kill mid-campaign, resume, byte-identical results
// -------------------------------------------------------------------

/// A small all-deterministic campaign (no timeouts, no panics): the
/// first six bugs' fault-matrix rows.
fn mini_matrix() -> Campaign {
    let full = clients::fault_matrix().expect("matrix builds");
    Campaign {
        name: "fault-matrix".into(),
        jobs: full.jobs.into_iter().take(24).collect(),
    }
}

#[test]
fn killed_campaign_resumes_to_byte_identical_results() {
    let campaign = mini_matrix();

    // Reference: uninterrupted serial run.
    let reference = campaign
        .run_with(1, RunOptions::default(), &BTreeMap::new(), |_, _| {})
        .expect("reference run")
        .results_json();

    // Journaled parallel run (records retire in scheduling order).
    let path = temp_path("resume.jsonl");
    let writer = Mutex::new(JournalWriter::create(&path, &campaign).expect("journal creates"));
    campaign
        .run_with(8, RunOptions::default(), &BTreeMap::new(), |i, r| {
            writer
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .append(i, r)
                .expect("journal append");
        })
        .expect("journaled run");
    writer
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .sync()
        .expect("journal sync");

    // "kill -9": keep the header + 10 records, then a torn partial line
    // exactly as a mid-write crash leaves it.
    let text = std::fs::read_to_string(&path).expect("read journal");
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + campaign.jobs.len());
    lines.truncate(1 + 10);
    let mut truncated = lines.join("\n");
    truncated.push_str("\n{\"job\": 3, \"record\": {\"design\": \"D1\", \"fau");
    std::fs::write(&path, truncated).expect("truncate journal");

    // Resume: replay the journal, rerun the remainder on a different
    // worker count than the reference.
    let state = journal::load(&path).expect("journal loads despite torn tail");
    assert!(state.torn_tail, "torn final line must be flagged");
    assert_eq!(state.completed.len(), 10);
    journal::validate(&state, &campaign).expect("journal matches campaign");
    let resumed = campaign
        .run_with(8, RunOptions::default(), &state.completed, |_, _| {})
        .expect("resumed run");

    assert_eq!(
        resumed.results_json(),
        reference,
        "resumed results must be byte-identical to an uninterrupted run"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn journal_for_a_different_campaign_is_refused() {
    let mini = mini_matrix();
    let path = temp_path("mismatch.jsonl");
    JournalWriter::create(&path, &mini).expect("journal creates");
    let state = journal::load(&path).expect("journal loads");

    // Same file, different campaign: job count and spec hash disagree.
    let other = clients::seed_sweep(2).expect("sweep builds");
    let err = journal::validate(&state, &other).expect_err("must refuse");
    assert!(matches!(err, CampaignError::Journal(_)), "{err:?}");

    // And a same-name campaign with a mutated matrix is also refused.
    let mut mutated = mini_matrix();
    mutated.jobs[0].fault = "renamed".into();
    let err = journal::validate(&state, &mutated).expect_err("must refuse");
    let msg = err.to_string();
    assert!(msg.contains("spec hash"), "{msg}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_rejects_out_of_range_job_indices() {
    let campaign = mini_matrix();
    let mut completed = BTreeMap::new();
    completed.insert(
        campaign.jobs.len() + 7,
        JobRecord {
            design: "x".into(),
            fault: "x".into(),
            seed: "x".into(),
            verdict: Verdict::Completed,
            detail: String::new(),
            cycles: 0,
            counters: Default::default(),
            retries: 0,
        },
    );
    let err = campaign
        .run_with(1, RunOptions::default(), &completed, |_, _| {})
        .expect_err("must refuse");
    assert!(matches!(err, CampaignError::Journal(_)), "{err:?}");
}

// -------------------------------------------------------------------
// Streaming --out writer
// -------------------------------------------------------------------

#[test]
fn streamed_report_is_byte_identical_to_to_json() {
    let campaign = mini_matrix();
    let path = temp_path("stream.json");
    let stream = Mutex::new(
        StreamingReport::create(&path, &campaign.name, campaign.jobs.len()).expect("stream creates"),
    );
    let report = campaign
        .run_with(4, RunOptions::default(), &BTreeMap::new(), |i, r| {
            stream
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(i, r)
                .expect("stream push");
        })
        .expect("streamed run");
    stream
        .into_inner()
        .unwrap_or_else(|p| p.into_inner())
        .finish(&report)
        .expect("stream finish");
    let streamed = std::fs::read_to_string(&path).expect("read streamed report");
    assert_eq!(streamed, report.to_json());
    std::fs::remove_file(&path).ok();
}
