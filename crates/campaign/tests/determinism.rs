//! The determinism suite: the whole point of the campaign engine's
//! design is that worker count is invisible in results. These tests pin
//! that down over the full 20-bug × 4-fault matrix — `--jobs 8`, `--jobs
//! 1`, and the legacy-style serial loop must produce byte-identical
//! deterministic report sections — plus compile-time `Send`/`Sync`
//! checks on the shared engine types.

use hwdbg_campaign::{clients, CampaignReport, CampaignSpec};
use hwdbg_sim::{CompiledDesign, Simulator};

/// `Simulator` must be `Send` and `CompiledDesign` `Send + Sync` — the
/// pool moves whole engines onto worker threads and shares one compile
/// artifact among all of them. These are compile-time facts; the test
/// body exists so the suite names them.
#[test]
fn shared_engine_types_cross_threads_by_construction() {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Simulator>();
    assert_send_sync::<CompiledDesign>();
    assert_send::<hwdbg_campaign::Job>();
    assert_send_sync::<hwdbg_campaign::Campaign>();
}

fn results_of(r: &CampaignReport) -> String {
    r.results_json()
}

#[test]
fn fault_matrix_is_worker_count_invariant() {
    let campaign = clients::fault_matrix().expect("matrix builds");
    assert_eq!(campaign.jobs.len(), 80, "20 bugs x 4 fault classes");

    let serial = campaign.run_serial().expect("serial run");
    let one = campaign.run(1).expect("jobs=1 run");
    let eight = campaign.run(8).expect("jobs=8 run");

    // Byte-identical deterministic sections, all three ways.
    assert_eq!(results_of(&serial), results_of(&one));
    assert_eq!(results_of(&one), results_of(&eight));

    // And the matrix still honors the legacy contract: every pair
    // completes or errors in a typed way — a panicking job would show
    // up here as a `crashed` record instead.
    assert_eq!(serial.records.len(), 80);
    for rec in &eight.records {
        assert!(
            rec.verdict == hwdbg_campaign::Verdict::Completed
                || rec.verdict == hwdbg_campaign::Verdict::Error,
            "{} x {}: unexpected verdict {:?}",
            rec.design,
            rec.fault,
            rec.verdict
        );
    }
}

#[test]
fn seed_sweep_is_worker_count_invariant() {
    let campaign = clients::seed_sweep(2).expect("sweep builds");
    let one = campaign.run(1).expect("jobs=1 run");
    let four = campaign.run(4).expect("jobs=4 run");
    assert_eq!(results_of(&one), results_of(&four));
    // Random init is seeded per job, so repeat runs match too.
    let again = campaign.run(4).expect("jobs=4 rerun");
    assert_eq!(results_of(&four), results_of(&again));
}

#[test]
fn spec_campaigns_are_worker_count_invariant() {
    let spec = CampaignSpec::parse(
        "name spec-det\n\
         design D1\n\
         design C2\n\
         mode run\n\
         cycles 24\n\
         seeds zero 3 4\n\
         fault none\n\
         fault auto\n",
    )
    .expect("spec parses");
    let campaign = spec.build().expect("spec builds");
    // 2 designs x (1 none + 4 auto classes) x 3 seeds.
    assert_eq!(campaign.jobs.len(), 30);
    let one = campaign.run(1).expect("jobs=1 run");
    let eight = campaign.run(8).expect("jobs=8 run");
    assert_eq!(results_of(&one), results_of(&eight));
}

/// Merged counters must be order-independent too: the merge is a field
/// sum over per-job counters that are themselves deterministic.
#[test]
fn merged_counters_match_across_worker_counts() {
    let campaign = clients::fault_matrix().expect("matrix builds");
    let one = campaign.run(1).expect("jobs=1 run");
    let eight = campaign.run(8).expect("jobs=8 run");
    assert_eq!(one.merged, eight.merged);
    assert!(one.merged.steps > 0, "the matrix simulated something");
}
