//! # hwdbg — software-style bug localization for reconfigurable hardware
//!
//! A Rust reproduction of *"Debugging in the Brave New World of
//! Reconfigurable Hardware"* (ASPLOS 2022). This facade crate re-exports the
//! whole workspace so applications can depend on a single crate:
//!
//! * [`bits`] — arbitrary-width two-state bit vectors
//! * [`diag`] — typed diagnostics ([`diag::HwdbgError`]) shared by every layer
//! * [`obs`] — observability: stage timers and hot-path counters
//! * [`rtl`] — Verilog-subset lexer, parser, AST, and pretty-printer
//! * [`dataflow`] — elaboration and propagation/dependency analysis
//! * [`sim`] — cycle-accurate simulator with `$display` capture and VCD
//! * [`ip`] — behavioral blackbox IP models (FIFOs, RAM, trace buffer)
//! * [`synth`] — FPGA resource-estimation and timing model
//! * [`tools`] — SignalCat, FSM Monitor, Dependency Monitor, Statistics
//!   Monitor, and LossCheck
//! * [`lint`] — bug-study-driven static analysis passes with stable L-codes
//! * [`testbed`] — 20 reproducible FPGA bugs plus the 68-bug study catalog
//! * [`campaign`] — work-stealing parallel campaign runner over shared
//!   compiled designs
//!
//! # Example
//!
//! ```
//! use hwdbg::testbed::{BugId, reproduce};
//!
//! let report = reproduce(BugId::D4)?;
//! assert!(report.symptom_observed);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use hwdbg_bits as bits;
pub use hwdbg_campaign as campaign;
pub use hwdbg_dataflow as dataflow;
pub use hwdbg_diag as diag;
pub use hwdbg_ip as ip;
pub use hwdbg_lint as lint;
pub use hwdbg_obs as obs;
pub use hwdbg_rtl as rtl;
pub use hwdbg_sim as sim;
pub use hwdbg_synth as synth;
pub use hwdbg_testbed as testbed;
pub use hwdbg_tools as tools;
