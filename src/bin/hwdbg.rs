//! `hwdbg` — command-line front end for the toolkit.
//!
//! ```text
//! hwdbg parse <file.v> [--top NAME]                 check + print the flat module
//! hwdbg sim <file.v> [--top NAME] [--cycles N] [--clock clk] [--vcd out.vcd]
//!           [--backend tree|bytecode|levelized] [--json]
//!                                                   pick the execution backend
//! hwdbg fsm <file.v> [--top NAME]                   detect FSMs (§4.2 heuristics)
//! hwdbg deps <file.v> --var SIGNAL [--cycles K]     dependency chain (§4.3)
//! hwdbg signalcat <file.v> [--top NAME] [--depth N] emit instrumented Verilog (§4.1)
//! hwdbg losscheck <file.v> --source S --sink K --valid V
//!                                                   emit instrumented Verilog (§4.5)
//! hwdbg resources <file.v> [--top NAME] [--platform harp|kc705]
//! hwdbg testbed [BUG_ID|all]                        reproduce testbed bugs (§6.1)
//! hwdbg faults <file.v> --plan PLAN [--cycles N] [--clock CLK] [--top NAME]
//!                                                   inject faults mid-simulation
//! hwdbg profile <file.v|BUG_ID> [--cycles N] [--clock CLK] [--json]
//!                                                   stage timings + hot-path counters
//! hwdbg lint <file.v|BUG_ID> [--json] [--deny IDS] [--allow IDS] [--warn IDS]
//!            [--explain LXXXX]                      static bug-pattern analysis (§6)
//! hwdbg campaign <spec|fault-matrix|seed-sweep> [--jobs N] [--json] [--out FILE]
//!                [--job-timeout SECS] [--retries N] [--journal FILE]
//!                [--resume FILE] [--baseline FILE]
//!                                                   fault-tolerant simulation fleet
//! ```
//!
//! All errors surface as rendered [`hwdbg::diag::HwdbgError`] diagnostics
//! (stable `EXXYY` codes, source excerpts for spanned errors) rather than
//! panics or bare `Debug` dumps.

use hwdbg::dataflow::{elaborate, flatten, resolve, DepKind, Design, PropGraph};
use hwdbg::diag::HwdbgError;
use hwdbg::diag::Severity;
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::lint::{Level, LintConfig};
use hwdbg::obs::{counters_json, json_escape, render_human, stages_json, SimCounters, StageTimer};
use hwdbg::sim::{run_with_faults, Backend, FaultPlan, SimConfig, Simulator};
use hwdbg::synth::{estimate, estimate_timing, Platform};
use hwdbg::testbed::{metadata, reproduce, BugId};
use hwdbg::tools::losscheck::LossCheckConfig;
use hwdbg::tools::signalcat::SignalCatConfig;
use hwdbg::tools::statmon::Event;
use hwdbg::tools::{
    clock_map, DependencyMonitor, FsmMonitor, LossCheck, SignalCat, StatisticsMonitor,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hwdbg: {e}");
            ExitCode::FAILURE
        }
    }
}

type Anyhow = Box<dyn std::error::Error>;

fn run(args: &[String]) -> Result<(), Anyhow> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "parse" => cmd_parse(rest),
        "sim" => cmd_sim(rest),
        "fsm" => cmd_fsm(rest),
        "deps" => cmd_deps(rest),
        "signalcat" => cmd_signalcat(rest),
        "losscheck" => cmd_losscheck(rest),
        "resources" => cmd_resources(rest),
        "testbed" => cmd_testbed(rest),
        "faults" => cmd_faults(rest),
        "profile" => cmd_profile(rest),
        "lint" => cmd_lint(rest),
        "campaign" => cmd_campaign(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `hwdbg help`)").into()),
    }
}

fn print_usage() {
    println!(
        "hwdbg — software-style bug localization for reconfigurable hardware\n\n\
         usage:\n  \
         hwdbg parse <file.v> [--top NAME]\n  \
         hwdbg sim <file.v> [--top NAME] [--cycles N] [--clock CLK] [--vcd OUT] [--backend tree|bytecode|levelized] [--json]\n  \
         hwdbg fsm <file.v> [--top NAME]\n  \
         hwdbg deps <file.v> --var SIGNAL [--cycles K] [--top NAME]\n  \
         hwdbg signalcat <file.v> [--top NAME] [--depth N]\n  \
         hwdbg losscheck <file.v> --source S --sink K --valid V [--top NAME]\n  \
         hwdbg resources <file.v> [--top NAME] [--platform harp|kc705]\n  \
         hwdbg testbed [BUG_ID|all]\n  \
         hwdbg faults <file.v> --plan PLAN [--cycles N] [--clock CLK] [--top NAME]\n  \
         hwdbg profile <file.v|BUG_ID> [--top NAME] [--cycles N] [--clock CLK] [--json]\n  \
         hwdbg lint <file.v|BUG_ID> [--top NAME] [--json] [--deny IDS] [--allow IDS] [--warn IDS] [--explain LXXXX]\n  \
         hwdbg campaign <spec|fault-matrix|seed-sweep> [--jobs N] [--json] [--out FILE] [--seeds N]\n           \
         [--job-timeout SECS] [--retries N] [--journal FILE] [--resume FILE] [--baseline FILE]"
    );
}

/// Minimal flag parser: positional file plus `--key value` options.
struct Opts {
    file: Option<String>,
    flags: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, Anyhow> {
        let mut file = None;
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.push((key.to_owned(), value.clone()));
            } else if file.is_none() {
                file = Some(a.clone());
            } else {
                return Err(format!("unexpected argument `{a}`").into());
            }
        }
        Ok(Opts { file, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn file(&self) -> Result<&str, Anyhow> {
        self.file.as_deref().ok_or_else(|| "missing <file.v>".into())
    }
}

/// Renders a typed diagnostic against the source it points into — the
/// `error[EXXYY]` header plus a `--> path:line:col` excerpt for spanned
/// errors — and boxes it for the CLI error path.
fn rendered(diag: HwdbgError, src: &str, path: &str) -> Anyhow {
    diag.with_path(path).render(Some(src)).into()
}

fn load(opts: &Opts) -> Result<Design, Anyhow> {
    let path = opts.file()?;
    let src = std::fs::read_to_string(path)?;
    let file = hwdbg::rtl::parse(&src).map_err(|e| rendered(e.into(), &src, path))?;
    let top = match opts.get("top") {
        Some(t) => t.to_owned(),
        None => {
            file.modules
                .last()
                .ok_or("file contains no modules")?
                .name
                .clone()
        }
    };
    let design = elaborate(&file, &top, &StdIpLib::new())
        .map_err(|e| rendered(e.into(), &src, path))?;
    for warn in design.lints() {
        eprintln!("{}", warn.with_path(path).render(Some(&src)));
    }
    Ok(design)
}

fn cmd_parse(args: &[String]) -> Result<(), Anyhow> {
    let opts = Opts::parse(args)?;
    let design = load(&opts)?;
    println!("{}", hwdbg::rtl::print_module(&design.flat));
    eprintln!(
        "ok: {} signals, {} comb drivers, {} clocked processes, {} blackboxes",
        design.signals.len(),
        design.combs.len(),
        design.procs.len(),
        design.blackboxes.len()
    );
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), Anyhow> {
    let json = args.iter().any(|a| a == "--json");
    let filtered: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--json")
        .cloned()
        .collect();
    let opts = Opts::parse(&filtered)?;
    let design = load(&opts)?;
    let clock = opts.get("clock").unwrap_or("clk").to_owned();
    let cycles: u64 = opts.get("cycles").unwrap_or("100").parse()?;
    let backend_name = opts.get("backend").unwrap_or("levelized").to_owned();
    let backend = match backend_name.as_str() {
        "levelized" => Backend::Levelized,
        "bytecode" => Backend::Bytecode,
        "tree" => Backend::Tree,
        other => {
            return Err(format!("unknown backend `{other}` (tree|bytecode|levelized)").into())
        }
    };
    let mut sim = Simulator::new(
        design,
        &StdModels,
        SimConfig::default().with_backend(backend),
    )?;
    if let Some(vcd_path) = opts.get("vcd") {
        sim.attach_vcd(std::fs::File::create(vcd_path)?)?;
    }
    sim.run(&clock, cycles)?;
    let (lowered, total) = sim.compiled_design().lowering_coverage();
    let (regions, max_level, fused_signals) = sim.compiled_design().region_stats();
    if json {
        let logs: Vec<String> = sim
            .logs()
            .iter()
            .map(|r| format!("\"{}\"", json_escape(&r.to_string())))
            .collect();
        println!(
            "{{\"clock\": \"{}\", \"cycles\": {}, \"finished\": {}, \
             \"backend\": \"{}\", \"lowered_units\": {lowered}, \"total_units\": {total}, \
             \"regions\": {regions}, \"max_level\": {max_level}, \
             \"fused_signals\": {fused_signals}, \"logs\": [{}]}}",
            json_escape(&clock),
            sim.cycle(&clock),
            sim.finished(),
            json_escape(&backend_name),
            logs.join(", "),
        );
        return Ok(());
    }
    for rec in sim.logs() {
        println!("{rec}");
    }
    eprintln!(
        "ran {} cycles of `{clock}`; {} log records{}",
        sim.cycle(&clock),
        sim.logs().len(),
        if sim.finished() { "; $finish reached" } else { "" }
    );
    eprintln!(
        "backend {backend_name}: {lowered}/{total} units lowered; \
         {regions} fused regions (max level {max_level}, {fused_signals} promoted signals)"
    );
    Ok(())
}

fn cmd_fsm(args: &[String]) -> Result<(), Anyhow> {
    let opts = Opts::parse(args)?;
    let design = load(&opts)?;
    let fsms = FsmMonitor::detect(&design);
    if fsms.is_empty() {
        println!("no FSMs detected");
        return Ok(());
    }
    for f in fsms {
        let states: Vec<String> = f
            .states
            .iter()
            .map(|(v, n)| format!("{n}={v}"))
            .collect();
        println!("{} ({} bits): {}", f.signal, f.width, states.join(", "));
    }
    Ok(())
}

fn cmd_deps(args: &[String]) -> Result<(), Anyhow> {
    let opts = Opts::parse(args)?;
    let design = load(&opts)?;
    let var = opts.get("var").ok_or("missing --var SIGNAL")?;
    let k: u32 = opts.get("cycles").unwrap_or("3").parse()?;
    let graph = PropGraph::build(&design, &StdIpLib::new())?;
    let chain = DependencyMonitor::analyze(
        &design,
        &graph,
        var,
        k,
        &[DepKind::Data, DepKind::Control],
    )?;
    println!("dependencies of `{var}` within {k} cycles:");
    for (sig, dist) in &chain.deps {
        if sig != var {
            println!("  {dist} cycle(s): {sig}");
        }
    }
    Ok(())
}

fn cmd_signalcat(args: &[String]) -> Result<(), Anyhow> {
    let opts = Opts::parse(args)?;
    let design = load(&opts)?;
    let cfg = SignalCatConfig {
        buffer_depth: opts.get("depth").unwrap_or("8192").parse()?,
        ..Default::default()
    };
    let info = SignalCat::instrument(&design, &cfg)?;
    println!("{}", hwdbg::rtl::print_module(&info.module));
    eprintln!(
        "instrumented {} $display statement(s); generated {} lines",
        info.statements.len(),
        info.generated_lines
    );
    Ok(())
}

fn cmd_losscheck(args: &[String]) -> Result<(), Anyhow> {
    let opts = Opts::parse(args)?;
    let design = load(&opts)?;
    let cfg = LossCheckConfig {
        source: opts.get("source").ok_or("missing --source")?.to_owned(),
        sink: opts.get("sink").ok_or("missing --sink")?.to_owned(),
        source_valid: opts.get("valid").ok_or("missing --valid")?.to_owned(),
    };
    let graph = PropGraph::build(&design, &StdIpLib::new())?;
    let info = LossCheck::instrument(&design, &graph, &cfg)?;
    println!("{}", hwdbg::rtl::print_module(&info.module));
    eprintln!(
        "tracking {:?} on the {} -> {} path; generated {} lines",
        info.tracked, cfg.source, cfg.sink, info.generated_lines
    );
    Ok(())
}

fn cmd_resources(args: &[String]) -> Result<(), Anyhow> {
    let opts = Opts::parse(args)?;
    let design = load(&opts)?;
    let platform = match opts.get("platform").unwrap_or("harp") {
        "harp" => Platform::IntelHarp,
        "kc705" => Platform::XilinxKc705,
        other => return Err(format!("unknown platform `{other}`").into()),
    };
    let r = estimate(&design);
    let t = estimate_timing(&design);
    let (regs, logic, bram) = r.normalized(platform);
    println!("platform: {platform}");
    println!("registers : {:>10}  ({regs:.4}%)", r.registers);
    println!("logic     : {:>10}  ({logic:.4}%)", r.logic_cells);
    println!("bram bits : {:>10}  ({bram:.4}%)", r.bram_bits);
    println!(
        "timing    : {} logic levels, Fmax ≈ {:.0} MHz",
        t.critical_levels, t.fmax_mhz
    );
    Ok(())
}

fn cmd_testbed(args: &[String]) -> Result<(), Anyhow> {
    let which = args.first().map(String::as_str).unwrap_or("all");
    let ids: Vec<BugId> = if which == "all" {
        BugId::ALL.to_vec()
    } else {
        let found = BugId::ALL
            .into_iter()
            .find(|id| id.to_string().eq_ignore_ascii_case(which));
        vec![found.ok_or_else(|| format!("unknown bug id `{which}`"))?]
    };
    let mut failures = 0;
    for id in ids {
        let r = reproduce(id)?;
        let ok = r.symptom_observed && r.fixed_passes;
        failures += (!ok) as usize;
        println!(
            "{id:<4} {} symptom={} | {}",
            if ok { "ok  " } else { "FAIL" },
            r.symptom.map_or("-".into(), |s| s.to_string()),
            r.detail
        );
    }
    if failures > 0 {
        return Err(format!("{failures} bug(s) failed to reproduce").into());
    }
    Ok(())
}

/// `hwdbg profile`: run the whole pipeline — parse, elaborate (flatten +
/// resolve), compile, simulate, analyze — with per-stage wall-clock spans
/// and the simulator's hot-path counters enabled, then report both.
///
/// The target is either a Verilog file or a testbed bug id (`d2`, `c1`,
/// ...). Analysis sub-spans run each paper tool that applies to the design
/// and fold its tool-side counters into the same registry; tools that do
/// not apply (no `$display`s, no FSM, no loss spec) are skipped silently —
/// profiling reports what ran, it does not fail on what cannot.
fn cmd_profile(args: &[String]) -> Result<(), Anyhow> {
    let json = args.iter().any(|a| a == "--json");
    let filtered: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--json")
        .cloned()
        .collect();
    let opts = Opts::parse(&filtered)?;
    let target = opts.file()?;

    // Testbed bug id or path on disk.
    let bug = BugId::ALL
        .into_iter()
        .find(|id| id.to_string().eq_ignore_ascii_case(target));
    let (label, src, top, loss) = match bug {
        Some(id) => {
            let meta = metadata(id);
            (
                format!("testbed:{id}"),
                meta.source.to_owned(),
                Some(meta.top.to_owned()),
                meta.loss,
            )
        }
        None => (
            target.to_owned(),
            std::fs::read_to_string(target)?,
            opts.get("top").map(str::to_owned),
            None,
        ),
    };

    let lib = StdIpLib::new();
    let mut timer = StageTimer::new();
    let file = timer
        .time("parse", || hwdbg::rtl::parse(&src))
        .map_err(|e| rendered(e.into(), &src, &label))?;
    let top = match top {
        Some(t) => t,
        None => {
            file.modules
                .last()
                .ok_or("file contains no modules")?
                .name
                .clone()
        }
    };
    timer.start("elaborate");
    let design = timer
        .time("flatten", || flatten(&file, &top, &lib))
        .and_then(|flat| timer.time("resolve", || resolve(flat, &lib)));
    timer.finish();
    let design = design.map_err(|e| rendered(e.into(), &src, &label))?;

    let clock = match opts.get("clock") {
        Some(c) => c.to_owned(),
        None => clock_map(&design).1.unwrap_or_else(|| "clk".into()),
    };
    let cycles: u64 = opts.get("cycles").unwrap_or("200").parse()?;

    let mut sim = timer.time("compile", || {
        Simulator::new(
            design.clone(),
            &StdModels,
            SimConfig::default().with_metrics(true),
        )
    })?;
    // Testbed bugs run their push-button workload (the profile then covers
    // a representative stimulus, and a symptom is an outcome, not a crash);
    // plain files free-run the clock.
    let outcome = match bug {
        Some(id) => match timer.time("simulate", || hwdbg::testbed::workloads::run(id, &mut sim))
        {
            Ok(hwdbg::testbed::Outcome::Pass) => "pass".to_owned(),
            Ok(hwdbg::testbed::Outcome::Fail { symptom, .. }) => format!("fail ({symptom})"),
            Err(e) => format!("error ({e})"),
        },
        None => {
            timer.time("simulate", || sim.run(&clock, cycles))?;
            if sim.finished() {
                "$finish".to_owned()
            } else {
                "ran".to_owned()
            }
        }
    };
    let mut counters = sim.counters().copied().unwrap_or_default();
    // Analysis re-simulations use the same stimulus as the profiled run.
    let drive = |s: &mut Simulator| -> bool {
        match bug {
            Some(id) => hwdbg::testbed::workloads::run(id, s).is_ok(),
            None => s.run(&clock, cycles).is_ok(),
        }
    };

    timer.start("analyze");
    timer.time("signalcat", || {
        let Ok(info) = SignalCat::instrument(&design, &SignalCatConfig::default()) else {
            return;
        };
        let Ok(d2) = resolve(info.module.clone(), &lib) else {
            return;
        };
        let Ok(mut s) = Simulator::new(d2, &StdModels, SimConfig::default()) else {
            return;
        };
        if !drive(&mut s) {
            return;
        }
        SignalCat::observe(&info, &s, &mut counters);
    });
    timer.time("fsm", || {
        let Ok(info) = FsmMonitor::new().instrument(&design) else {
            return;
        };
        let Ok(d2) = resolve(info.module.clone(), &lib) else {
            return;
        };
        let Ok(mut s) = Simulator::new(d2, &StdModels, SimConfig::default()) else {
            return;
        };
        if !drive(&mut s) {
            return;
        }
        FsmMonitor::observe(&info, &s, &mut counters);
    });
    timer.time("depmon", || DependencyMonitor::observe(&sim, &mut counters));
    if let Some(loss) = &loss {
        timer.time("losscheck", || {
            let cfg = LossCheckConfig {
                source: loss.source.to_owned(),
                sink: loss.sink.to_owned(),
                source_valid: loss.valid.to_owned(),
            };
            let Ok(graph) = PropGraph::build(&design, &lib) else {
                return;
            };
            let Ok(info) = LossCheck::instrument(&design, &graph, &cfg) else {
                return;
            };
            let Ok(d2) = resolve(info.module.clone(), &lib) else {
                return;
            };
            let Ok(mut s) = Simulator::new(d2, &StdModels, SimConfig::default()) else {
                return;
            };
            if s.run(&clock, cycles).is_err() {
                return;
            }
            LossCheck::observe(s.logs(), &mut counters);
        });
        timer.time("statmon", || {
            let Ok(expr) = hwdbg::rtl::parse_expr(loss.valid) else {
                return;
            };
            let events = vec![Event::new("valid", expr)];
            let Ok(info) = StatisticsMonitor::instrument(&design, &events, None) else {
                return;
            };
            let Ok(d2) = resolve(info.module.clone(), &lib) else {
                return;
            };
            let Ok(mut s) = Simulator::new(d2, &StdModels, SimConfig::default()) else {
                return;
            };
            if s.run(&clock, cycles).is_err() {
                return;
            }
            StatisticsMonitor::observe(&info, &s, &mut counters);
        });
    }
    timer.finish();

    let (lowered, total) = sim.compiled_design().lowering_coverage();
    let (regions, max_level, fused_signals) = sim.compiled_design().region_stats();
    if json {
        println!(
            "{{\"design\": \"{}\", \"clock\": \"{}\", \"cycles\": {cycles}, \
             \"outcome\": \"{}\", \"lowered_units\": {lowered}, \"total_units\": {total}, \
             \"regions\": {regions}, \"max_level\": {max_level}, \
             \"fused_signals\": {fused_signals}, \"stages\": {}, \"counters\": {}}}",
            json_escape(&label),
            json_escape(&clock),
            json_escape(&outcome),
            stages_json(&timer),
            counters_json(&counters),
        );
    } else {
        println!("profile of {label} — clock `{clock}`, outcome: {outcome}");
        println!(
            "schedule: {lowered}/{total} units lowered; {regions} fused regions \
             (max level {max_level}, {fused_signals} promoted signals)"
        );
        println!("{}", render_human(&timer, &counters));
    }
    Ok(())
}

/// `hwdbg lint`: run the static bug-pattern passes over an elaborated
/// design and render every finding against its source. The target is
/// either a Verilog file or a testbed bug id (`d1`, `c3`, ...).
///
/// `--deny`/`--allow`/`--warn` take comma-separated L-codes and override
/// the built-in levels; any deny-level finding makes the command exit
/// nonzero, so `--deny L0501` turns a lint into a CI gate.
fn cmd_lint(args: &[String]) -> Result<(), Anyhow> {
    let json = args.iter().any(|a| a == "--json");
    let filtered: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--json")
        .cloned()
        .collect();
    let opts = Opts::parse(&filtered)?;
    // `--explain LXXXX` needs no design: resolve the code and exit.
    if let Some(code) = opts.get("explain") {
        return explain_code(code, json);
    }
    let target = opts.file()?;

    // Testbed bug id or path on disk.
    let bug = BugId::ALL
        .into_iter()
        .find(|id| id.to_string().eq_ignore_ascii_case(target));
    let (label, src, top) = match bug {
        Some(id) => {
            let meta = metadata(id);
            (
                format!("testbed:{id}"),
                meta.source.to_owned(),
                Some(meta.top.to_owned()),
            )
        }
        None => (
            target.to_owned(),
            std::fs::read_to_string(target)?,
            opts.get("top").map(str::to_owned),
        ),
    };

    let mut cfg = LintConfig::new();
    for (flag, level) in [
        ("allow", Level::Allow),
        ("warn", Level::Warn),
        ("deny", Level::Deny),
    ] {
        if let Some(list) = opts.get(flag) {
            for code in list.split(',').map(str::trim).filter(|c| !c.is_empty()) {
                cfg.set(code, level);
            }
        }
    }

    let mut timer = StageTimer::new();
    let file = timer
        .time("parse", || hwdbg::rtl::parse(&src))
        .map_err(|e| rendered(e.into(), &src, &label))?;
    let top = match top {
        Some(t) => t,
        None => {
            file.modules
                .last()
                .ok_or("file contains no modules")?
                .name
                .clone()
        }
    };
    let design = timer
        .time("elaborate", || elaborate(&file, &top, &StdIpLib::new()))
        .map_err(|e| rendered(e.into(), &src, &label))?;

    let mut counters = SimCounters::default();
    timer.start("lint");
    let findings = hwdbg::lint::run_all(&design, &cfg, &mut timer, &mut counters);
    timer.finish();
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();

    if json {
        let items: Vec<String> = findings
            .iter()
            .map(|f| {
                let span = f
                    .span
                    .map_or("null".to_owned(), |s| format!("[{}, {}]", s.start, s.end));
                let signals: Vec<String> = f
                    .signals
                    .iter()
                    .map(|s| format!("\"{}\"", json_escape(s)))
                    .collect();
                format!(
                    "{{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", \
                     \"span\": {span}, \"signals\": [{}]}}",
                    f.code.as_str(),
                    f.severity,
                    json_escape(&f.message),
                    signals.join(", ")
                )
            })
            .collect();
        println!(
            "{{\"design\": \"{}\", \"top\": \"{}\", \"errors\": {errors}, \
             \"findings\": [{}], \"stages\": {}, \"counters\": {}}}",
            json_escape(&label),
            json_escape(&top),
            items.join(", "),
            stages_json(&timer),
            counters_json(&counters),
        );
    } else {
        for f in &findings {
            println!("{}", f.clone().with_path(&label).render(Some(&src)));
        }
        eprintln!(
            "{label}: {} finding(s) ({errors} error(s)) from {} pass(es)",
            findings.len(),
            counters.lint_passes
        );
    }
    if errors > 0 {
        return Err(format!("{errors} deny-level finding(s)").into());
    }
    Ok(())
}

/// `hwdbg lint --explain LXXXX`: print what a code fingerprints, the
/// Table 1 subclass it targets, and a minimal triggering example.
fn explain_code(code: &str, json: bool) -> Result<(), Anyhow> {
    let Some(e) = hwdbg::lint::explain(code) else {
        return Err(format!(
            "unknown lint code `{code}` (codes look like L0501; \
             see `hwdbg lint` findings for the full set)"
        )
        .into());
    };
    if json {
        println!(
            "{{\"code\": \"{}\", \"subclass\": \"{}\", \"summary\": \"{}\", \
             \"example\": \"{}\"}}",
            e.code,
            json_escape(e.subclass),
            json_escape(e.summary),
            json_escape(e.example),
        );
    } else {
        println!("{} — Table 1 subclass: {}", e.code, e.subclass);
        println!();
        println!("{}", e.summary);
        println!();
        println!("example:");
        for line in e.example.lines() {
            println!("    {line}");
        }
    }
    Ok(())
}

fn cmd_faults(args: &[String]) -> Result<(), Anyhow> {
    let opts = Opts::parse(args)?;
    let design = load(&opts)?;
    let plan_path = opts.get("plan").ok_or("missing --plan PLAN")?;
    let plan_src = std::fs::read_to_string(plan_path)?;
    let plan = FaultPlan::parse(&plan_src)
        .map_err(|e| rendered(e.into(), &plan_src, plan_path))?;
    plan.validate(&design)
        .map_err(|e| rendered(e.into(), &plan_src, plan_path))?;
    let clock = opts.get("clock").unwrap_or("clk").to_owned();
    let cycles: u64 = opts.get("cycles").unwrap_or("100").parse()?;

    eprintln!("injecting {} fault(s):", plan.faults.len());
    for f in &plan.faults {
        eprintln!("  {f}");
    }
    let mut sim = Simulator::new(design, &StdModels, SimConfig::default())?;
    match run_with_faults(&mut sim, &clock, cycles, &plan) {
        Ok(ran) => {
            for rec in sim.logs() {
                println!("{rec}");
            }
            let forced = sim.forced_signals();
            eprintln!(
                "ran {ran} cycles of `{clock}` under faults; {} log records{}{}",
                sim.logs().len(),
                if sim.finished() { "; $finish reached" } else { "" },
                if forced.is_empty() {
                    String::new()
                } else {
                    format!("; still forced at exit: {}", forced.join(", "))
                }
            );
            Ok(())
        }
        // A typed simulation error under faults is a *finding*, not a
        // crash: render it with its code and the signals involved.
        Err(e) => {
            let diag: HwdbgError = e.into();
            Err(diag.render(None).into())
        }
    }
}

/// `hwdbg campaign` — run a job matrix across worker threads and print
/// one aggregated report.
///
/// The target is a builtin campaign (`fault-matrix`, `seed-sweep`) or a
/// spec file in the job-matrix grammar (see `hwdbg-campaign` docs and
/// README). `--jobs N` picks the worker count (default: available
/// parallelism); `--json` prints the full machine-readable report (the
/// `results` section of which is byte-identical for any `--jobs` value);
/// `--out FILE` streams the JSON report to a file as jobs retire.
///
/// Fault tolerance: `--job-timeout SECS` arms a per-job wall-clock
/// watchdog (hung jobs become `timed-out` records); `--retries N` reruns
/// crashed/timed-out jobs up to N times; `--journal FILE` appends each
/// retired record to a crash-safe JSONL journal; `--resume FILE` replays
/// a journal from a killed run and executes only the remainder (the
/// final results section is byte-identical to an uninterrupted run);
/// `--baseline FILE` diffs this run's verdicts against a prior report
/// and exits nonzero on drift.
fn cmd_campaign(args: &[String]) -> Result<(), Anyhow> {
    use hwdbg::campaign::journal::{self, JournalWriter, StreamingReport};
    use hwdbg::campaign::{baseline, CampaignError, JobRecord, RunOptions};
    use std::collections::BTreeMap;
    use std::path::Path;
    use std::sync::Mutex;

    // CampaignError carries a stable E08xx code; render it like every
    // other diagnostic instead of Debug-dumping.
    fn rendered_campaign(e: CampaignError) -> Anyhow {
        let diag: HwdbgError = e.into();
        diag.render(None).into()
    }
    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    let json = args.iter().any(|a| a == "--json");
    let filtered: Vec<String> = args
        .iter()
        .filter(|a| a.as_str() != "--json")
        .cloned()
        .collect();
    let opts = Opts::parse(&filtered)?;
    let target = opts.file.as_deref().ok_or(
        "missing campaign target: a spec file, `fault-matrix`, or `seed-sweep`",
    )?;
    let jobs: usize = match opts.get("jobs") {
        Some(n) => n.parse()?,
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    };
    let mut run_opts = RunOptions::default();
    if let Some(t) = opts.get("job-timeout") {
        let secs: f64 = t.parse()?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err(format!("--job-timeout must be a positive number of seconds, got `{t}`").into());
        }
        run_opts.job_timeout = Some(std::time::Duration::from_secs_f64(secs));
    }
    if let Some(r) = opts.get("retries") {
        run_opts.retries = r.parse()?;
    }
    let campaign = match target {
        "fault-matrix" => hwdbg::campaign::clients::fault_matrix()?,
        "seed-sweep" => {
            let seeds: u64 = opts.get("seeds").unwrap_or("4").parse()?;
            hwdbg::campaign::clients::seed_sweep(seeds)?
        }
        path => {
            let src = std::fs::read_to_string(path)
                .map_err(|e| format!("{path}: {e}"))?;
            hwdbg::campaign::CampaignSpec::parse(&src)?.build()?
        }
    };

    // Journal: `--resume` replays + appends to an existing journal;
    // `--journal` starts a fresh one.
    let mut completed: BTreeMap<usize, JobRecord> = BTreeMap::new();
    let mut writer: Option<JournalWriter> = None;
    if let Some(rp) = opts.get("resume") {
        let state = journal::load(Path::new(rp)).map_err(rendered_campaign)?;
        journal::validate(&state, &campaign).map_err(rendered_campaign)?;
        if state.torn_tail {
            eprintln!("{rp}: torn final line (crash damage); that job will rerun");
        }
        eprintln!(
            "resuming {rp}: {} of {} jobs already journaled",
            state.completed.len(),
            campaign.jobs.len()
        );
        completed = state.completed;
        writer = Some(JournalWriter::resume(Path::new(rp))?);
    } else if let Some(jp) = opts.get("journal") {
        writer = Some(JournalWriter::create(Path::new(jp), &campaign)?);
    }

    // `--out` streams the report as jobs retire; replayed records land
    // in the stream up front so a resumed file is complete too.
    let mut stream: Option<StreamingReport> = None;
    if let Some(out) = opts.get("out") {
        let mut s = StreamingReport::create(Path::new(out), &campaign.name, campaign.jobs.len())?;
        for (i, r) in &completed {
            s.push(*i, r)?;
        }
        stream = Some(s);
    }

    let writer = Mutex::new(writer);
    let stream = Mutex::new(stream);
    let retire = |i: usize, r: &JobRecord| {
        // On I/O failure, warn once and stop writing — a full disk must
        // not take down the campaign itself.
        let mut w = lock(&writer);
        if let Some(jw) = w.as_mut() {
            if let Err(e) = jw.append(i, r) {
                eprintln!("journal write failed, disabling journal: {e}");
                *w = None;
            }
        }
        drop(w);
        let mut s = lock(&stream);
        if let Some(sr) = s.as_mut() {
            if let Err(e) = sr.push(i, r) {
                eprintln!("--out stream write failed, disabling: {e}");
                *s = None;
            }
        }
    };
    let mut report = campaign
        .run_with(jobs, run_opts, &completed, retire)
        .map_err(rendered_campaign)?;

    if let Some(mut jw) = lock(&writer).take() {
        jw.sync()?;
        report.journal_flushes = jw.flushes();
    }
    if let Some(sr) = lock(&stream).take() {
        sr.finish(&report)?;
    }

    if json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }

    // `--baseline`: typed verdict drift is a failure the exit code must
    // carry, with the per-job table on stderr.
    if let Some(bp) = opts.get("baseline") {
        let text = std::fs::read_to_string(bp).map_err(|e| format!("{bp}: {e}"))?;
        let base = baseline::parse_baseline(&text).map_err(rendered_campaign)?;
        let d = baseline::diff(&report.records, &base);
        if !d.is_clean() {
            eprintln!("{}", d.render_table());
            return Err(rendered_campaign(CampaignError::Baseline(format!(
                "{} verdict(s) drifted from baseline {bp}",
                d.drifted.len()
            ))));
        }
        if !d.missing.is_empty() || !d.added.is_empty() {
            eprint!("{}", d.render_table());
        }
        eprintln!("baseline {bp}: no verdict drift");
    }
    Ok(())
}
