//! LossCheck across every data-loss bug in the testbed: instrument, run
//! the failing workload, filter with the passing test, and report where
//! the data went missing — reproducing the 6-of-7 localization result of
//! §6.3 (including D1's lone false positive and D11's mis-filtered miss).
//!
//! Run with `cargo run --example loss_hunt`.

use hwdbg::dataflow::{resolve, PropGraph};
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::sim::{SimConfig, Simulator};
use hwdbg::testbed::{buggy_design, metadata, workloads, BugId};
use hwdbg::tools::losscheck::LossCheckConfig;
use hwdbg::tools::LossCheck;

const LOSS_BUGS: [BugId; 7] = [
    BugId::D1,
    BugId::D2,
    BugId::D3,
    BugId::D4,
    BugId::D11,
    BugId::C2,
    BugId::C4,
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = StdIpLib::new();
    let mut localized = 0;
    for id in LOSS_BUGS {
        let meta = metadata(id);
        let Some(spec) = meta.loss else {
            eprintln!("{id:?}: no loss spec, skipping");
            continue;
        };
        let design = buggy_design(id)?;
        let graph = PropGraph::build(&design, &lib)?;
        let cfg = LossCheckConfig {
            source: spec.source.into(),
            sink: spec.sink.into(),
            source_valid: spec.valid.into(),
        };
        let info = LossCheck::instrument(&design, &graph, &cfg)?;
        let instrumented = resolve(info.module.clone(), &lib)?;

        let mut buggy = Simulator::new(instrumented.clone(), &StdModels, SimConfig::default())?;
        let _ = workloads::run(id, &mut buggy)?;
        let raw = LossCheck::reports(buggy.logs());

        let mut ground = Simulator::new(instrumented, &StdModels, SimConfig::default())?;
        let _ = workloads::run_ground_truth(id, &mut ground)?;
        let suppressed = LossCheck::reports(ground.logs());
        let filtered = LossCheck::filter(&raw, &suppressed);

        let hit = filtered.contains(spec.expect);
        localized += hit as usize;
        println!(
            "{id:>4} ({:<22}) tracked {:>2} regs | reports: {:?}{}",
            meta.app,
            info.tracked.len(),
            filtered,
            if hit {
                format!("  -> loss at `{}` localized", spec.expect)
            } else {
                "  -> mis-filtered (the paper's D11 false negative)".into()
            }
        );
    }
    println!("\nlocalized {localized}/{} data-loss bugs (paper: 6/7)", LOSS_BUGS.len());
    Ok(())
}
