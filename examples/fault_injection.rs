//! Fault injection against a live debugging session: perturb the Grayscale
//! accelerator (bug D2) mid-simulation with each fault class and show that
//! every tool keeps producing output — degraded and *marked* as degraded,
//! but never a panic. This is the robustness story of §2: deployed
//! hardware misbehaves in unanticipated ways, and the debugging
//! infrastructure has to survive the very failures it exists to observe.
//!
//! Run with `cargo run --example fault_injection`.

use hwdbg::dataflow::resolve;
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::sim::{step_with_faults, FaultPlan, SimConfig, SimError, Simulator};
use hwdbg::testbed::faults::all_plans;
use hwdbg::testbed::{buggy_design, BugId};
use hwdbg::tools::signalcat::SignalCatConfig;
use hwdbg::tools::{FsmMonitor, SignalCat};

/// Drives the D2 grayscale pixel stream (the same stimulus as its testbed
/// workload) while injecting the plan's faults cycle by cycle.
fn drive_pixels(sim: &mut Simulator, plan: &FaultPlan) -> Result<(), SimError> {
    sim.poke_u64("rst", 1)?;
    step_with_faults(sim, "clk", plan)?;
    sim.poke_u64("rst", 0)?;
    sim.poke_u64("start", 1)?;
    step_with_faults(sim, "clk", plan)?;
    sim.poke_u64("start", 0)?;
    for i in 0..24u64 {
        sim.poke_u64("pix_in", (i << 16) | ((i * 3) << 8) | ((i * 7) % 256))?;
        sim.poke_u64("pix_in_valid", 1)?;
        step_with_faults(sim, "clk", plan)?;
        sim.poke_u64("pix_in_valid", 0)?;
        sim.poke_u64("host_rd", 1)?;
        step_with_faults(sim, "clk", plan)?;
        sim.poke_u64("host_rd", 0)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2)?;
    let clock = design
        .clocks()
        .into_iter()
        .next()
        .unwrap_or_else(|| "clk".into());

    println!("fault plans derived from the D2 design:");
    let mut plans = all_plans(&design, 0xC0FFEE);
    // Plus a targeted corruption: pin the write FSM to encoding 3, which
    // none of its localparams name — the monitor must flag this.
    plans.push((
        "state-corrupt",
        FaultPlan::new().stuck_at("wr_state", hwdbg::bits::Bits::from_u64(2, 3), 10, Some(30)),
    ));
    for (class, plan) in &plans {
        for f in &plan.faults {
            println!("  [{class:<14}] {f}");
        }
    }

    // Instrument once: SignalCat over the design's $display statements and
    // the FSM monitor over its detected state machines.
    let sc = SignalCat::instrument(&design, &SignalCatConfig::default())?;
    let with_sc = resolve(sc.module.clone(), &lib)?;
    let fsm = FsmMonitor::new().instrument(&design)?;
    let with_fsm = resolve(fsm.module.clone(), &lib)?;

    for (class, plan) in &plans {
        println!("\n=== injecting: {class} ===");

        // SignalCat under faults: the log survives, and a wrapped or
        // truncated buffer is flagged rather than silently incomplete.
        let mut sim = Simulator::new(with_sc.clone(), &StdModels, SimConfig::default())?;
        match drive_pixels(&mut sim, plan) {
            Ok(()) => {
                let checked = SignalCat::reconstruct_checked(&sc, &sim);
                println!(
                    "[signalcat] {} cycles, {} records reconstructed{}",
                    sim.cycle(&clock),
                    checked.value.len(),
                    if checked.is_clean() { "" } else { " (DEGRADED)" }
                );
                for warn in &checked.diags {
                    println!("[signalcat]   {}", warn.render(None));
                }
            }
            Err(e) => {
                let diag: hwdbg::diag::HwdbgError = e.into();
                println!("[signalcat] typed error: {}", diag.render(None));
            }
        }

        // FSM monitor under faults: forcing the state register off its
        // encoding shows up as an "unlabeled state" degradation warning.
        let mut sim = Simulator::new(with_fsm.clone(), &StdModels, SimConfig::default())?;
        match drive_pixels(&mut sim, plan) {
            Ok(()) => {
                let checked = FsmMonitor::trace_checked(&fsm, &sim);
                println!(
                    "[fsm-mon  ] {} transitions observed{}",
                    checked.value.len(),
                    if checked.is_clean() { "" } else { " (DEGRADED)" }
                );
                for warn in &checked.diags {
                    println!("[fsm-mon  ]   {}", warn.render(None));
                }
            }
            Err(e) => {
                let diag: hwdbg::diag::HwdbgError = e.into();
                println!("[fsm-mon  ] typed error: {}", diag.render(None));
            }
        }
    }

    println!("\nevery fault class ran to completion: no panics, degraded output marked.");
    Ok(())
}
