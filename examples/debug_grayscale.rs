//! The paper's §6.3 case study, replayed end-to-end: debugging the
//! Grayscale accelerator's buffer overflow (bug D2) with the toolkit.
//!
//! 1. The host observes the acceleration task hanging.
//! 2. FSM Monitor shows the read FSM in RD_FINISH but the write FSM still
//!    in WR_DATA — the hang is in write-side logic.
//! 3. Statistics Monitor confirms fewer outputs than inputs: data loss.
//! 4. LossCheck pinpoints the loss at the `linebuf` line buffer.
//!
//! Run with `cargo run --example debug_grayscale`.

use hwdbg::dataflow::{resolve, PropGraph};
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::rtl::parse_expr;
use hwdbg::sim::{SimConfig, Simulator};
use hwdbg::testbed::{buggy_design, metadata, workloads, BugId, Outcome};
use hwdbg::tools::losscheck::LossCheckConfig;
use hwdbg::tools::statmon::Event;
use hwdbg::tools::{FsmMonitor, LossCheck, StatisticsMonitor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = StdIpLib::new();
    let design = buggy_design(BugId::D2)?;

    // Step 1: the symptom — the acceleration task hangs.
    let mut sim = Simulator::new(design.clone(), &StdModels, SimConfig::default())?;
    let Outcome::Fail { symptom, detail } = workloads::run(BugId::D2, &mut sim)? else {
        panic!("the buggy design should fail");
    };
    println!("[host] symptom: {symptom} — {detail}\n");

    // Step 2: FSM Monitor. Re-execute with FSM tracing.
    let monitor = FsmMonitor::new();
    let fsm_info = monitor.instrument(&design)?;
    println!(
        "[fsm-monitor] detected FSMs: {:?} ({} lines of tracing logic generated)",
        fsm_info.fsms.iter().map(|f| f.signal.clone()).collect::<Vec<_>>(),
        fsm_info.generated_lines
    );
    let d2 = resolve(fsm_info.module.clone(), &lib)?;
    let mut traced = Simulator::new(d2, &StdModels, SimConfig::default())?;
    let _ = workloads::run(BugId::D2, &mut traced)?;
    let transitions = FsmMonitor::trace(&fsm_info, &traced);
    let last_rd = transitions.iter().rfind(|t| t.signal == "rd_state");
    let last_wr = transitions.iter().rfind(|t| t.signal == "wr_state");
    println!(
        "[fsm-monitor] read FSM ended in {}, write FSM ended in {}",
        last_rd.map_or("?".into(), |t| t.to_name.clone()),
        last_wr.map_or("?".into(), |t| t.to_name.clone())
    );
    println!("[developer] reading finished but writing did not: the hang is in write logic\n");

    // Step 3: Statistics Monitor — count inputs vs. outputs.
    let events = vec![
        Event::new("pixels_in", parse_expr("pix_in_valid")?),
        Event::new("pixels_out", parse_expr("pix_out_valid")?),
    ];
    let stat_info = StatisticsMonitor::instrument(&design, &events, None)?;
    let d3 = resolve(stat_info.module.clone(), &lib)?;
    let mut counted = Simulator::new(d3, &StdModels, SimConfig::default())?;
    let _ = workloads::run(BugId::D2, &mut counted)?;
    let counts = StatisticsMonitor::counts(&stat_info, &counted);
    println!(
        "[stat-monitor] pixels in = {}, pixels out = {} -> data loss inside the accelerator\n",
        counts["pixels_in"], counts["pixels_out"]
    );

    // Step 4: LossCheck localizes the loss.
    let graph = PropGraph::build(&design, &lib)?;
    let Some(spec) = metadata(BugId::D2).loss else {
        return Err("D2 metadata is missing its loss spec".into());
    };
    let cfg = LossCheckConfig {
        source: spec.source.into(),
        sink: spec.sink.into(),
        source_valid: spec.valid.into(),
    };
    let lc = LossCheck::instrument(&design, &graph, &cfg)?;
    println!(
        "[losscheck] tracking {:?} along the {} -> {} path ({} lines generated)",
        lc.tracked, cfg.source, cfg.sink, lc.generated_lines
    );
    let d4 = resolve(lc.module.clone(), &lib)?;
    let mut buggy = Simulator::new(d4.clone(), &StdModels, SimConfig::default())?;
    let _ = workloads::run(BugId::D2, &mut buggy)?;
    let raw = LossCheck::reports(buggy.logs());
    let mut ground = Simulator::new(d4, &StdModels, SimConfig::default())?;
    let _ = workloads::run_ground_truth(BugId::D2, &mut ground)?;
    let filtered = LossCheck::filter(&raw, &LossCheck::reports(ground.logs()));
    println!("[losscheck] raw reports: {raw:?}");
    println!("[losscheck] after ground-truth filtering: {filtered:?}");
    println!("\n[developer] the loss is an out-of-bounds write into `linebuf` — the");
    println!("            wr_ptr wrap at LINE-1 is missing. Bug localized.");
    Ok(())
}
