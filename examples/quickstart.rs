//! Quickstart: parse a design, simulate it, and get the same log from a
//! native simulation and from SignalCat's on-FPGA recording buffer.
//!
//! Run with `cargo run --example quickstart`.

use hwdbg::dataflow::{elaborate, resolve};
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::sim::{SimConfig, Simulator};
use hwdbg::tools::signalcat::SignalCatConfig;
use hwdbg::tools::SignalCat;

const DESIGN: &str = r#"
// A tiny credit-based producer: emits a word and logs every grant.
module producer(input clk, input rst, input grant, output reg [7:0] word);
  always @(posedge clk) begin
    if (rst) begin
      word <= 8'd0;
    end else if (grant) begin
      word <= word + 8'd1;
      $display("granted, next word = %0d", word + 8'd1);
    end
  end
endmodule
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = StdIpLib::new();
    let file = hwdbg::rtl::parse(DESIGN)?;
    let design = elaborate(&file, "producer", &lib)?;

    // --- Simulation with native $display -------------------------------
    let mut sim = Simulator::new(design.clone(), &StdModels, SimConfig::default())?;
    sim.poke_u64("rst", 1)?;
    sim.step("clk")?;
    sim.poke_u64("rst", 0)?;
    for cycle in 0..8u64 {
        sim.poke_u64("grant", (cycle % 2 == 0) as u64)?;
        sim.step("clk")?;
    }
    println!("native simulation log:");
    for rec in sim.logs() {
        println!("  {rec}");
    }

    // --- The same design, SignalCat-instrumented for deployment --------
    let instrumented = SignalCat::instrument(&design, &SignalCatConfig::default())?;
    println!(
        "\nSignalCat generated {} lines of recording logic; instrumented Verilog:",
        instrumented.generated_lines
    );
    for line in hwdbg::rtl::print_module(&instrumented.module)
        .lines()
        .filter(|l| l.contains("__sc_") || l.contains("trace_buffer"))
        .take(6)
    {
        println!("  {}", line.trim());
    }

    let deployed = resolve(instrumented.module.clone(), &lib)?;
    let mut fpga = Simulator::new(deployed, &StdModels, SimConfig::default())?;
    fpga.poke_u64("rst", 1)?;
    fpga.step("clk")?;
    fpga.poke_u64("rst", 0)?;
    for cycle in 0..8u64 {
        fpga.poke_u64("grant", (cycle % 2 == 0) as u64)?;
        fpga.step("clk")?;
    }
    assert!(fpga.logs().is_empty(), "displays are stripped on-FPGA");
    let reconstructed = SignalCat::reconstruct(&instrumented, &fpga);
    println!("\nreconstructed from the on-chip trace buffer:");
    for rec in &reconstructed {
        println!("  {rec}");
    }

    let native: Vec<_> = sim.logs().iter().map(|r| r.message.clone()).collect();
    let recon: Vec<_> = reconstructed.iter().map(|r| r.message.clone()).collect();
    assert_eq!(native, recon, "unified logging: same output either way");
    println!("\nnative and reconstructed logs are identical.");
    Ok(())
}
