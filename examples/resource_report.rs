//! Resource and timing report for an instrumented design: what Figure 2's
//! data points look like for one design, across recording-buffer sizes.
//!
//! Run with `cargo run --example resource_report`.

use hwdbg::dataflow::resolve;
use hwdbg::ip::StdIpLib;
use hwdbg::synth::{estimate, estimate_timing, Platform};
use hwdbg::testbed::{buggy_design, metadata, BugId};
use hwdbg::tools::signalcat::SignalCatConfig;
use hwdbg::tools::SignalCat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id = BugId::D3; // the Optimus hypervisor, a 400 MHz HARP design
    let meta = metadata(id);
    let lib = StdIpLib::new();
    let design = buggy_design(id)?;
    let base = estimate(&design);
    let base_t = estimate_timing(&design);
    println!(
        "{} baseline: {} registers, {} logic cells, {} BRAM bits, Fmax {:.0} MHz (target {} MHz)",
        meta.app, base.registers, base.logic_cells, base.bram_bits, base_t.fmax_mhz, meta.target_mhz
    );

    println!("\nSignalCat instrumentation sweep (recording-buffer depth):");
    println!(
        "{:>7} {:>12} {:>10} {:>8} {:>9} {:>7}",
        "depth", "BRAM bits", "registers", "logic", "Fmax MHz", "meets?"
    );
    for depth in [1024u64, 2048, 4096, 8192] {
        let cfg = SignalCatConfig {
            buffer_depth: depth,
            ..Default::default()
        };
        let sc = SignalCat::instrument(&design, &cfg)?;
        let d2 = resolve(sc.module, &lib)?;
        let r = estimate(&d2) - base;
        let t = estimate_timing(&d2);
        println!(
            "{depth:>7} {:>12} {:>10} {:>8} {:>9.0} {:>7}",
            r.bram_bits,
            r.registers,
            r.logic_cells,
            t.fmax_mhz,
            t.meets(meta.target_mhz)
        );
    }

    let (regs_pct, logic_pct, bram_pct) = {
        let cfg = SignalCatConfig {
            buffer_depth: 8192,
            ..Default::default()
        };
        let sc = SignalCat::instrument(&design, &cfg)?;
        let d2 = resolve(sc.module, &lib)?;
        (estimate(&d2) - base).normalized(Platform::IntelHarp)
    };
    println!(
        "\nat 8K entries the overhead is {regs_pct:.3}% of registers, {logic_pct:.3}% of \
         logic, and {bram_pct:.3}% of BRAM on {}",
        Platform::IntelHarp
    );
    println!(
        "note the paper's shape: BRAM grows linearly with the buffer, registers/logic stay flat,\n\
         and the 400 MHz Optimus design no longer meets timing once instrumented (§6.4)."
    );
    Ok(())
}
