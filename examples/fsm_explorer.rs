//! FSM Monitor across the whole testbed: detect every state machine with
//! the §4.2 heuristics, recover state names from localparams, and print a
//! live transition trace for the SDSPI controller.
//!
//! Run with `cargo run --example fsm_explorer`.

use hwdbg::dataflow::resolve;
use hwdbg::ip::{StdIpLib, StdModels};
use hwdbg::sim::{SimConfig, Simulator};
use hwdbg::testbed::{buggy_design, metadata, workloads, BugId};
use hwdbg::tools::FsmMonitor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("FSMs detected across the 20 testbed designs:\n");
    for id in BugId::ALL {
        let design = buggy_design(id)?;
        let fsms = FsmMonitor::detect(&design);
        if fsms.is_empty() {
            continue;
        }
        for f in &fsms {
            let states: Vec<String> = f.states.values().cloned().collect();
            println!(
                "  {:<4} {:<22} {:<10} ({} bits) states: {}",
                id.to_string(),
                metadata(id).app,
                f.signal,
                f.width,
                states.join(", ")
            );
        }
    }

    // A missed one-hot FSM, patched in by the developer (§4.2).
    let demo = buggy_design(BugId::S2)?;
    let mut monitor = FsmMonitor::new();
    monitor.add_signal("tx_phase");
    let patched = monitor.detect_with_patches(&demo);
    println!(
        "\nS2's one-hot `tx_phase` is a detector false negative; after the\n\
         developer patches it in, {} FSMs are monitored in axis_demo.",
        patched.len()
    );

    // Live transition trace on the SDSPI response FSM (bug D9's design).
    println!("\nSDSPI command FSM transition trace:");
    let design = buggy_design(BugId::D9)?;
    let info = FsmMonitor::new().instrument(&design)?;
    let lib = StdIpLib::new();
    let d2 = resolve(info.module.clone(), &lib)?;
    let mut sim = Simulator::new(d2, &StdModels, SimConfig::default())?;
    let _ = workloads::run(BugId::D9, &mut sim)?;
    for t in FsmMonitor::trace(&info, &sim) {
        println!(
            "  cycle {:>3}: {} {} -> {}",
            t.cycle, t.signal, t.from_name, t.to_name
        );
    }
    Ok(())
}
